//! The closed-loop cluster simulation (paper §V-A, Figs. 12–14).
//!
//! Stands in for the paper's 36-server overclockable cluster: 14 servers run
//! latency-critical SocialNet instances (the overclocking candidates), 14
//! run power-hungry MLTrain jobs (never overclocked), and a spare pool
//! absorbs scale-out. The rack manager monitors aggregate power against the
//! provisioned limit, emits warnings at 95 %, and performs prioritized
//! capping when the limit is hit.
//!
//! Five systems are compared: *Baseline* (no scaling at all), *ScaleOut*
//! (horizontal autoscaling on tail latency, with a VM boot delay),
//! *ScaleUp* (frequency-only scaling with no power management),
//! *NaiveOClock* (grant-everything overclocking), and *SmartOClock* (the
//! full platform: workload-intelligent triggers, prediction-based admission,
//! heterogeneous budgets, decentralized enforcement, and proactive
//! scale-out).

use serde::{Deserialize, Serialize};
use simcore::faults::{FaultPlan, FaultPlanConfig};
use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::messages::{ExhaustedResource, GrantId, OverclockRequest, SoaEvent};
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use smartoclock::wi::{GlobalWiAgent, LocalWiAgent, OverclockPolicy, VmMetrics};
use soc_power::hierarchy::{heterogeneous_split, DemandProfile};
use soc_power::model::PowerModel;
use soc_power::rack::{prioritized_shed, CapCandidate, RackMonitor, RackSignal};
use soc_power::units::{MegaHertz, Watts};
use soc_reliability::binning::BinningConfig;
use soc_telemetry::{tm_event, Component, Severity, Telemetry};
use soc_workloads::loadgen::RateSchedule;
use soc_workloads::microservice::MicroserviceSim;
use soc_workloads::mltrain::MlTrain;
use soc_workloads::socialnet::{socialnet_services, LoadLevel};
use std::collections::BTreeMap;

/// Which control system manages the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// No scaling of any kind.
    Baseline,
    /// Horizontal autoscaling on tail latency (VM boot delay applies).
    ScaleOut,
    /// Frequency-only scaling with no power coordination.
    ScaleUp,
    /// Overclocking that grants every request (even budget split).
    NaiveOClock,
    /// The full SmartOClock platform.
    SmartOClock,
}

impl SystemKind {
    /// All systems in Fig. 12's order plus NaiveOClock.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::Baseline,
        SystemKind::ScaleOut,
        SystemKind::ScaleUp,
        SystemKind::NaiveOClock,
        SystemKind::SmartOClock,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Baseline => "Baseline",
            SystemKind::ScaleOut => "ScaleOut",
            SystemKind::ScaleUp => "ScaleUp",
            SystemKind::NaiveOClock => "NaiveOClock",
            SystemKind::SmartOClock => "SmartOClock",
        }
    }

    fn overclocks(self) -> bool {
        matches!(
            self,
            SystemKind::ScaleUp | SystemKind::NaiveOClock | SystemKind::SmartOClock
        )
    }

    fn scales_out(self) -> bool {
        matches!(self, SystemKind::ScaleOut | SystemKind::SmartOClock)
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cluster experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The control system under test.
    pub system: SystemKind,
    /// Servers hosting SocialNet instances (one instance starts per server).
    pub socialnet_servers: usize,
    /// Servers running MLTrain (constant high power, never overclocked).
    pub mltrain_servers: usize,
    /// Spare servers available for scale-out.
    pub spare_servers: usize,
    /// Experiment duration.
    pub duration: SimDuration,
    /// Control period (observation window).
    pub tick: SimDuration,
    /// Rack limit as a fraction of its normal provisioning (1.0 = normal,
    /// lower values create the power-constrained scenario of §V-A).
    pub rack_limit_scale: f64,
    /// Scale on the overclocking lifetime budget (1.0 = the 10 % reference;
    /// 0.75/0.5/0.25 for the overclocking-constrained experiments).
    pub oc_budget_scale: f64,
    /// Whether SmartOClock performs proactive scale-out on exhaustion
    /// warnings (§IV-D); disable to reproduce the reactive baseline.
    pub proactive_scaleout: bool,
    /// VM boot delay for scale-out (minutes in the paper's motivation).
    pub boot_delay: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Control-plane fault schedule (default: no faults).
    #[serde(default)]
    pub faults: FaultPlanConfig,
    /// Per-part silicon heterogeneity (default: uniform fleet). Each
    /// overclockable server draws its part from the shared seed; its sOA
    /// enforces the drawn bin and `risk_budget` at admission.
    #[serde(default)]
    pub binning: BinningConfig,
}

impl ClusterConfig {
    /// The paper-shaped configuration: 14 + 14 + 8 servers.
    pub fn paper_reference(system: SystemKind) -> ClusterConfig {
        ClusterConfig {
            system,
            socialnet_servers: 14,
            mltrain_servers: 14,
            spare_servers: 8,
            duration: SimDuration::from_minutes(30),
            tick: SimDuration::from_secs(5),
            rack_limit_scale: 1.0,
            oc_budget_scale: 1.0,
            proactive_scaleout: true,
            boot_delay: SimDuration::from_secs(90),
            seed: 42,
            faults: FaultPlanConfig::none(),
            binning: BinningConfig::uniform(),
        }
    }

    /// A small configuration for unit tests.
    pub fn small_test(system: SystemKind) -> ClusterConfig {
        ClusterConfig {
            system,
            socialnet_servers: 3,
            mltrain_servers: 2,
            spare_servers: 1,
            duration: SimDuration::from_minutes(4),
            tick: SimDuration::from_secs(5),
            rack_limit_scale: 1.0,
            oc_budget_scale: 1.0,
            proactive_scaleout: true,
            boot_delay: SimDuration::from_secs(30),
            seed: 42,
            faults: FaultPlanConfig::none(),
            binning: BinningConfig::uniform(),
        }
    }
}

/// Result for one SocialNet instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceResult {
    /// Service name.
    pub name: String,
    /// Offered load class.
    pub load: LoadLevel,
    /// P99 latency over the whole run (ms).
    pub p99_ms: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// The SLO (ms).
    pub slo_ms: f64,
    /// Requests that exceeded the SLO.
    pub missed: u64,
    /// Completed requests.
    pub completed: u64,
    /// Fraction of observation windows whose P99 violated the SLO.
    pub violation_window_frac: f64,
}

/// Aggregate outcome of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterResult {
    /// Which system ran.
    pub system: SystemKind,
    /// Per-instance results.
    pub instances: Vec<InstanceResult>,
    /// Mean number of concurrently active VM instances (cost, Fig. 13).
    pub avg_active_vms: f64,
    /// Total cluster energy (J), Fig. 14.
    pub total_energy_j: f64,
    /// Energy of the SocialNet servers only (J).
    pub socialnet_energy_j: f64,
    /// Mean per-SocialNet-server energy by load class `[low, med, high]`.
    pub per_server_energy_by_load: [f64; 3],
    /// MLTrain throughput relative to uncapped turbo.
    pub mltrain_relative_throughput: f64,
    /// Rack power-capping ticks observed (control intervals at or over the
    /// limit; a long excursion counts once per tick so severities compare
    /// across systems).
    pub capping_events: u64,
    /// Overclocking requests (granted, total). Zero for non-OC systems.
    pub oc_requests: (u64, u64),
}

impl ClusterResult {
    /// Mean P99 across instances of a load class (NaN if none).
    pub fn p99_by_load(&self, load: LoadLevel) -> f64 {
        mean_by(&self.instances, load, |i| i.p99_ms)
    }

    /// Mean latency across instances of a load class (NaN if none).
    pub fn mean_by_load(&self, load: LoadLevel) -> f64 {
        mean_by(&self.instances, load, |i| i.mean_ms)
    }

    /// Total missed SLOs across instances of a load class.
    pub fn missed_by_load(&self, load: LoadLevel) -> u64 {
        self.instances
            .iter()
            .filter(|i| i.load == load)
            .map(|i| i.missed)
            .sum()
    }

    /// Fraction of observation windows violating the SLO, averaged over all
    /// instances (the §V-A overclocking-constrained metric).
    pub fn violation_window_frac(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances
            .iter()
            .map(|i| i.violation_window_frac)
            .sum::<f64>()
            / self.instances.len() as f64
    }
}

fn mean_by(
    instances: &[InstanceResult],
    load: LoadLevel,
    f: impl Fn(&InstanceResult) -> f64,
) -> f64 {
    let vals: Vec<f64> = instances
        .iter()
        .filter(|i| i.load == load)
        .map(f)
        .filter(|v| !v.is_nan())
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// A VM placement: which server and cores it occupies.
#[derive(Debug, Clone, Copy)]
struct VmSlot {
    server: usize,
    first_core: usize,
    cores: usize,
}

struct Instance {
    sim: MicroserviceSim,
    load: LoadLevel,
    wi: GlobalWiAgent,
    local: LocalWiAgent,
    slots: Vec<VmSlot>,
    grants: Vec<Option<GrantId>>,
    /// Scale-outs in flight: (ready_at).
    pending_boots: Vec<SimTime>,
    latencies: Vec<f64>,
    missed: u64,
    completed: u64,
    violation_windows: u64,
    windows: u64,
    scale_cooldown_until: SimTime,
    /// ScaleUp's current frequency.
    scaleup_freq: MegaHertz,
    /// Consecutive windows over SLO while fully overclocked (SmartOClock's
    /// own scale-out trigger).
    saturated_windows: u32,
    /// Causal decision id of the most recent `oc_deny` this instance
    /// received, and when; used to attribute subsequent SLO misses to
    /// admission denial. Tracing-only: never feeds back into control.
    last_deny_decision: u64,
    last_deny_at: SimTime,
}

/// The cluster simulator. Construct with [`ClusterSim::new`] and call
/// [`run`](ClusterSim::run).
pub struct ClusterSim {
    config: ClusterConfig,
    model: PowerModel,
    instances: Vec<Instance>,
    mltrain: Vec<MlTrain>,
    /// Per-server agents (SocialNet + spare servers only).
    soas: Vec<ServerOverclockAgent>,
    grant_owner: BTreeMap<(usize, GrantId), (usize, usize)>,
    /// Per-server next free core index.
    free_core: Vec<usize>,
    rack: RackMonitor,
    /// Frequency caps from prioritized capping, per server (socialnet+spare
    /// then mltrain).
    caps: Vec<Option<MegaHertz>>,
    /// Causal decision id of the `cap_set` that imposed each server's cap
    /// (`0` when uncapped or telemetry is off). Parallel to `caps`.
    cap_decisions: Vec<u64>,
    last_signal: Option<RackSignal>,
    /// Causal decision id of the `rack_warning`/`rack_capping` event behind
    /// `last_signal` (`0` for `Normal` or when telemetry is off).
    last_signal_decision: u64,
    total_energy_j: f64,
    socialnet_energy_j: f64,
    per_server_energy: Vec<f64>,
    vm_count_samples: Vec<f64>,
    capped_ticks: u64,
    policy_kind: PolicyKind,
    telemetry: Telemetry,
    /// Deterministic fault schedule generated from `config.faults` over the
    /// run horizon. A no-op plan leaves every trace byte-identical to a
    /// build without fault injection.
    faults: FaultPlan,
    /// Whether the previous tick fell inside a gOA outage window (edge
    /// detection for `degraded_enter` / `degraded_exit` events).
    goa_was_down: bool,
    /// Causal decision id of the harness `degraded_enter` event (0 outside
    /// outages or when telemetry is off).
    goa_degraded_decision: u64,
}

impl ClusterSim {
    /// Build the cluster.
    ///
    /// # Panics
    /// Panics if the configuration has no SocialNet servers.
    pub fn new(config: ClusterConfig) -> ClusterSim {
        assert!(
            config.socialnet_servers > 0,
            "need at least one SocialNet server"
        );
        let model = PowerModel::reference_server();
        let plan = model.plan();
        let specs = socialnet_services();
        let loads = [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High];

        let policy_kind = match config.system {
            SystemKind::NaiveOClock => PolicyKind::NaiveOClock,
            _ => PolicyKind::SmartOClock,
        };

        let oc_server_count = config.socialnet_servers + config.spare_servers;
        config.binning.validate();
        let mut soa_config = SoaConfig::reference();
        soa_config.risk_budget = config.binning.risk_budget;
        let mut soas: Vec<ServerOverclockAgent> = (0..oc_server_count)
            .map(|s| {
                let mut soa = ServerOverclockAgent::new(model, soa_config, policy_kind);
                if config.oc_budget_scale < 1.0 {
                    soa.scale_lifetime_budget(config.oc_budget_scale);
                }
                // Silicon lottery: each overclockable server realizes its
                // part from the shared seed. Uniform fleets skip this so the
                // agents stay byte-identical to a pre-binning build.
                if !config.binning.is_uniform() {
                    soa.set_silicon(config.binning.part(&plan, FaultPlan::entity_id(0, s)));
                }
                soa
            })
            .collect();

        let mut instances = Vec::new();
        for i in 0..config.socialnet_servers {
            let spec = specs[i % specs.len()].clone();
            let load = loads[i % loads.len()];
            // Offered load: steady level with periodic bursts (the transient
            // spikes the paper motivates overclocking with).
            let base = load.fraction() * spec.capacity_per_vm(1.0);
            let schedule = RateSchedule::bursty(
                base,
                base * 1.15,
                SimDuration::from_minutes(10),
                SimDuration::from_minutes(2),
                config.duration,
            );
            let sim = MicroserviceSim::new(
                spec.clone(),
                plan.turbo(),
                schedule,
                1,
                config.seed.wrapping_add(i as u64),
            );
            let slo = spec.slo_ms();
            // Overclock trigger before the scale-out threshold (§IV-D).
            let wi = GlobalWiAgent::new(OverclockPolicy::latency(0.9 * slo, 0.45 * slo));
            instances.push(Instance {
                sim,
                load,
                wi,
                local: LocalWiAgent::new(0.5),
                slots: vec![VmSlot {
                    server: i,
                    first_core: 0,
                    cores: spec.cores_per_vm,
                }],
                grants: vec![None],
                pending_boots: Vec::new(),
                latencies: Vec::new(),
                missed: 0,
                completed: 0,
                violation_windows: 0,
                windows: 0,
                scale_cooldown_until: SimTime::ZERO,
                scaleup_freq: plan.turbo(),
                saturated_windows: 0,
                last_deny_decision: 0,
                last_deny_at: SimTime::ZERO,
            });
        }
        let mut free_core = vec![0usize; oc_server_count];
        for (i, inst) in instances.iter().enumerate() {
            free_core[i] = inst.slots[0].cores;
        }

        let mltrain: Vec<MlTrain> = (0..config.mltrain_servers)
            .map(|_| MlTrain::new(plan.turbo(), 0.85))
            .collect();

        // Rack provisioning: the paper's cluster is "all 28 from one rack,
        // and 8 from another during scale-out" (§V-A) — the monitored rack
        // holds the SocialNet and MLTrain servers, while the spare pool
        // lives in a second, adequately-provisioned rack. Operators
        // "provisioned adequate power to avoid capping; the limits are
        // lowered for power management evaluations" (§VI): the limit is
        // 25 % above the estimated steady draw of rack 1, scaled down for
        // the power-constrained scenarios.
        let total_servers = oc_server_count + config.mltrain_servers;
        let ml_draw = model.server_power_uniform(0.85, plan.turbo());
        let sn_draw: Watts = instances
            .iter()
            .map(|inst| {
                let cores = inst.sim.spec().cores_per_vm;
                model.idle() + model.core_power(0.5, plan.turbo()) * cores as f64
            })
            .sum();
        let estimated = sn_draw + ml_draw * config.mltrain_servers as f64;
        let limit = estimated * 1.25 * config.rack_limit_scale;
        // Warning band at 97%: the per-server overclocking amplitudes in
        // this cluster are a few percent of rack draw, so the warning must
        // sit close to the limit to be an early signal rather than a
        // constant alarm.
        let rack = RackMonitor::new(limit, 0.97);

        // Initial budgets: even split of rack 1 across its servers; spares
        // (second rack) get an ample budget.
        let rack1_servers = config.socialnet_servers + config.mltrain_servers;
        let even = limit / rack1_servers as f64;
        let ample = model.server_power_uniform(1.0, plan.turbo()) * 1.2;
        for (s, soa) in soas.iter_mut().enumerate() {
            if s < config.socialnet_servers {
                soa.set_power_budget(even);
            } else {
                soa.set_power_budget(ample);
            }
        }

        let faults = FaultPlan::generate(
            &config.faults,
            SimTime::ZERO,
            SimTime::ZERO + config.duration,
        );

        ClusterSim {
            caps: vec![None; total_servers],
            cap_decisions: vec![0; total_servers],
            per_server_energy: vec![0.0; total_servers],
            config,
            model,
            instances,
            mltrain,
            soas,
            grant_owner: BTreeMap::new(),
            free_core,
            rack,
            last_signal: None,
            last_signal_decision: 0,
            total_energy_j: 0.0,
            socialnet_energy_j: 0.0,
            vm_count_samples: Vec::new(),
            capped_ticks: 0,
            policy_kind,
            telemetry: Telemetry::disabled(),
            faults,
            goa_was_down: false,
            goa_degraded_decision: 0,
        }
    }

    /// Build the cluster with a telemetry handle. Every sOA is wired to the
    /// same handle (labelled by server index) and the harness itself emits
    /// capping, budget, and run-lifecycle events under
    /// [`Component::Harness`].
    ///
    /// # Panics
    /// Panics if the configuration has no SocialNet servers.
    pub fn with_telemetry(config: ClusterConfig, telemetry: Telemetry) -> ClusterSim {
        let mut sim = ClusterSim::new(config);
        sim.set_telemetry(telemetry);
        sim
    }

    /// Install (or replace) the telemetry handle on the harness and its sOAs.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (s, soa) in self.soas.iter_mut().enumerate() {
            soa.set_telemetry(telemetry.clone(), s);
        }
        self.telemetry = telemetry;
    }

    /// Run to completion and report.
    pub fn run(mut self) -> ClusterResult {
        let ticks = self.config.duration.as_micros() / self.config.tick.as_micros();
        let tm = self.telemetry.clone();
        tm_event!(tm, SimTime::ZERO, Component::Harness, Severity::Info, "run_start",
            "system" => self.config.system.name(),
            "socialnet_servers" => self.config.socialnet_servers,
            "mltrain_servers" => self.config.mltrain_servers,
            "spare_servers" => self.config.spare_servers,
            "ticks" => ticks);
        let span = tm.span(SimTime::ZERO, Component::Harness, "cluster_run");
        let mut ticks_since_refresh = 0u128;
        // Heterogeneous budgets apply from the start (the gOA computed them
        // from last week's profiles before this experiment began).
        if self.config.system == SystemKind::SmartOClock {
            self.refresh_budgets(SimTime::ZERO);
        }
        for k in 1..=ticks {
            let now = SimTime::ZERO + self.config.tick * k;
            self.inject_faults(now);
            self.step(now);
            // Refresh heterogeneous budgets periodically (the paper does this
            // weekly from templates; at cluster-experiment timescales we use
            // the latest observed demand every two minutes). While the gOA is
            // unreachable no refresh happens; `ticks_since_refresh` keeps
            // accumulating so the first healthy tick refreshes immediately.
            ticks_since_refresh += 1;
            let goa_down = self.faults.goa_unreachable(now);
            self.note_goa_state(now, goa_down);
            if self.config.system == SystemKind::SmartOClock
                && !goa_down
                && ticks_since_refresh * u128::from(self.config.tick.as_micros())
                    >= u128::from(SimDuration::from_minutes(2).as_micros())
            {
                ticks_since_refresh = 0;
                self.refresh_budgets(now);
            }
        }
        let end = SimTime::ZERO + self.config.tick * ticks;
        tm_event!(tm, end, Component::Harness, Severity::Info, "run_end",
            "system" => self.config.system.name(),
            "capping_ticks" => self.capped_ticks,
            "total_energy_j" => self.total_energy_j);
        span.field("ticks", ticks).end(end);
        tm.flush();
        self.finish()
    }

    /// Inject scheduled point faults for this tick: sOA restarts lose all
    /// in-flight grants and re-join conservatively at default frequency.
    fn inject_faults(&mut self, now: SimTime) {
        if self.faults.is_noop() {
            return;
        }
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        for s in 0..oc_server_count {
            if self.faults.soa_restarts(now, FaultPlan::entity_id(0, s)) {
                let events = self.soas[s].restart(now);
                self.apply_soa_events(now, s, &events);
            }
        }
    }

    /// Edge-detect gOA outage windows and emit `degraded_enter` /
    /// `degraded_exit` transition events. No events (and no telemetry ids)
    /// are produced when the plan schedules no outages.
    fn note_goa_state(&mut self, now: SimTime, goa_down: bool) {
        if goa_down == self.goa_was_down {
            return;
        }
        self.goa_was_down = goa_down;
        let tm = self.telemetry.clone();
        if goa_down {
            let decision = tm.next_id();
            self.goa_degraded_decision = decision;
            tm_event!(tm, now, Component::Fault, Severity::Warn, "degraded_enter",
                "kind" => simcore::faults::FaultKind::GoaOutage.label(),
                "decision_id" => decision);
        } else {
            tm_event!(tm, now, Component::Fault, Severity::Info, "degraded_exit",
                "kind" => simcore::faults::FaultKind::GoaOutage.label(),
                "cause_id" => self.goa_degraded_decision);
            self.goa_degraded_decision = 0;
        }
    }

    fn step(&mut self, now: SimTime) {
        let plan = self.model.plan();
        let system = self.config.system;

        // 1. Activate finished boots.
        for idx in 0..self.instances.len() {
            let ready: Vec<SimTime> = self.instances[idx]
                .pending_boots
                .iter()
                .copied()
                .filter(|&t| t <= now)
                .collect();
            if !ready.is_empty() {
                self.instances[idx].pending_boots.retain(|&t| t > now);
                for _ in ready {
                    self.add_vm(idx);
                }
            }
        }

        // 2. Advance the queueing sims and gather window stats.
        let tm = self.telemetry.clone();
        // Per-server cap state snapshot for SLO-miss attribution (the
        // instance loop below holds a mutable borrow of `self.instances`).
        let cap_decisions = self.cap_decisions.clone();
        let capped: Vec<bool> = self.caps.iter().map(Option::is_some).collect();
        let deny_window = SimDuration::from_secs(30);
        let mut metrics: Vec<VmMetrics> = Vec::with_capacity(self.instances.len());
        for (idx, inst) in self.instances.iter_mut().enumerate() {
            let stats = inst.sim.advance_window(now);
            inst.windows += 1;
            if !stats.p99_ms.is_nan() {
                inst.latencies.push(stats.p99_ms);
                if stats.p99_ms > inst.sim.spec().slo_ms() {
                    inst.violation_windows += 1;
                    if tm.is_enabled() {
                        // Attribute the miss: a frequency cap on a hosting
                        // server dominates, then a recent admission denial,
                        // otherwise plain queueing under load.
                        let cap_cause = inst
                            .slots
                            .iter()
                            .take(inst.sim.active_vms())
                            .find(|slot| capped[slot.server])
                            .map(|slot| cap_decisions[slot.server]);
                        let recent_deny =
                            inst.last_deny_decision != 0 && now <= inst.last_deny_at + deny_window;
                        let (attribution, cause) = match cap_cause {
                            Some(c) => ("cap", c),
                            None if recent_deny => ("admission_denied", inst.last_deny_decision),
                            None => ("queueing", 0),
                        };
                        tm_event!(tm, now, Component::Harness, Severity::Warn, "slo_miss",
                            "service" => idx,
                            "load" => inst.load.name(),
                            "p99_ms" => stats.p99_ms,
                            "slo_ms" => inst.sim.spec().slo_ms(),
                            "attribution" => attribution,
                            "decision_id" => tm.next_id(),
                            "cause_id" => cause);
                        tm.metrics(|m| {
                            m.inc_counter(
                                "slo_miss_windows",
                                &[("attribution", attribution.into())],
                            );
                        });
                    }
                }
            }
            inst.completed += stats.completions;
            inst.missed += (stats.completions as f64 * stats.slo_miss_frac).round() as u64;
            let raw = VmMetrics {
                tail_latency_ms: stats.p99_ms,
                cpu_utilization: stats.cpu_utilization,
                queue_length: inst.sim.in_system() as f64,
            };
            metrics.push(inst.local.observe_traced(now, raw, &tm, idx));
        }

        // 3. Control decisions.
        match system {
            SystemKind::Baseline => {}
            SystemKind::ScaleOut => self.autoscale_horizontal(now, &metrics),
            SystemKind::ScaleUp => self.scale_up_frequencies(now, &metrics),
            SystemKind::NaiveOClock | SystemKind::SmartOClock => {
                self.smartoclock_control(now, &metrics)
            }
        }

        // 4. Compute server powers.
        let powers = self.server_powers(&metrics);

        // 5. sOA control ticks (overclocking systems only). The previous
        // tick's rack signal rides in with its decision id so agent-side
        // corrective events chain back to the rack monitor's alarm.
        if system.overclocks() && system != SystemKind::ScaleUp {
            for (s, &power) in powers.iter().enumerate().take(self.soas.len()) {
                let events = self.soas[s].control_tick_traced(
                    now,
                    power,
                    self.last_signal,
                    self.last_signal_decision,
                );
                self.apply_soa_events(now, s, &events);
            }
        }

        // 6. Energy accounting and rack observation (with caps applied).
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        let powers = self.server_powers(&metrics);
        let dt_s = self.config.tick.as_secs_f64();
        for (s, p) in powers.iter().enumerate() {
            let joules = p.get() * dt_s;
            self.per_server_energy[s] += joules;
            self.total_energy_j += joules;
            if s < oc_server_count {
                // SocialNet home servers plus any spares hosting scaled-out
                // SocialNet VMs: the latency-critical side of the cluster.
                self.socialnet_energy_j += joules;
            }
        }
        // Only rack 1 (SocialNet homes + MLTrain) is monitored; spares are
        // in the second rack with adequate power.
        let rack1_total: Watts = powers
            .iter()
            .enumerate()
            .filter(|(s, _)| !self.is_spare(*s))
            .map(|(_, p)| *p)
            .sum();
        let signal = self.rack.observe(rack1_total);
        if signal == RackSignal::Capping {
            self.capped_ticks += 1;
        }
        if self.telemetry.is_enabled() {
            self.telemetry.metrics(|m| {
                m.set_gauge(
                    "rack_power_w",
                    &[("rack", 0usize.into())],
                    rack1_total.get(),
                );
                m.inc_counter("harness_ticks", &[]);
            });
            match signal {
                RackSignal::Capping => {
                    self.last_signal_decision = self.telemetry.next_id();
                    tm_event!(self.telemetry, now, Component::Harness, Severity::Error,
                        "rack_capping",
                        "rack_power_w" => rack1_total.get(),
                        "limit_w" => self.rack.limit().get(),
                        "decision_id" => self.last_signal_decision);
                }
                RackSignal::Warning => {
                    self.last_signal_decision = self.telemetry.next_id();
                    tm_event!(self.telemetry, now, Component::Harness, Severity::Warn,
                        "rack_warning",
                        "rack_power_w" => rack1_total.get(),
                        "limit_w" => self.rack.limit().get(),
                        "decision_id" => self.last_signal_decision);
                }
                RackSignal::Normal => self.last_signal_decision = 0,
            }
        }
        self.last_signal = Some(signal);
        self.apply_capping(now, signal, &powers, &metrics);

        // 7. Advance MLTrain with its effective frequency.
        for (j, job) in self.mltrain.iter_mut().enumerate() {
            let cap = self.caps[oc_server_count + j];
            let f = cap.unwrap_or(plan.turbo()).min(plan.turbo());
            job.run_for(self.config.tick, f);
        }

        // 8. Cost sample.
        let active: usize = self.instances.iter().map(|i| i.sim.active_vms()).sum();
        self.vm_count_samples.push(active as f64);
    }

    /// Horizontal autoscaler (the ScaleOut system): add a VM when the
    /// (smoothed) tail exceeds the SLO, remove one when far below.
    fn autoscale_horizontal(&mut self, now: SimTime, metrics: &[VmMetrics]) {
        for (idx, &m) in metrics.iter().enumerate().take(self.instances.len()) {
            let slo = self.instances[idx].sim.spec().slo_ms();
            let inst = &mut self.instances[idx];
            if now < inst.scale_cooldown_until || m.tail_latency_ms.is_nan() {
                continue;
            }
            if m.tail_latency_ms > slo {
                inst.pending_boots.push(now + self.config.boot_delay);
                inst.scale_cooldown_until = now + SimDuration::from_secs(60);
            } else if m.tail_latency_ms < 0.25 * slo && inst.sim.active_vms() > 1 {
                self.remove_vm(idx);
                self.instances[idx].scale_cooldown_until = now + SimDuration::from_secs(60);
            }
        }
    }

    /// Frequency-only scaling (the ScaleUp system) — no power coordination.
    fn scale_up_frequencies(&mut self, now: SimTime, metrics: &[VmMetrics]) {
        let plan = self.model.plan();
        for (idx, m) in metrics.iter().enumerate() {
            let inst = &mut self.instances[idx];
            if m.tail_latency_ms.is_nan() || now < inst.scale_cooldown_until {
                continue;
            }
            let slo = inst.sim.spec().slo_ms();
            if m.tail_latency_ms > 0.9 * slo {
                inst.scaleup_freq = plan.step_up(inst.scaleup_freq);
            } else if m.tail_latency_ms < 0.45 * slo {
                inst.scaleup_freq = plan.step_down(inst.scaleup_freq).max(plan.turbo());
            }
            let f = inst.scaleup_freq;
            let cap = inst.slots.first().and_then(|s| self.caps[s.server]);
            let eff = cap.map_or(f, |c| f.min(c));
            inst.sim.set_all_frequencies(eff);
        }
    }

    /// SmartOClock / NaiveOClock control: WI decisions → sOA requests.
    fn smartoclock_control(&mut self, now: SimTime, metrics: &[VmMetrics]) {
        let plan = self.model.plan();
        let tm = self.telemetry.clone();
        for (idx, &m) in metrics.iter().enumerate().take(self.instances.len()) {
            self.instances[idx].wi.report(vec![m]);
            let decision = self.instances[idx].wi.decide_traced(now, &tm, idx);
            let spec_cores = self.instances[idx].sim.spec().cores_per_vm;
            if decision.overclock {
                // Request a grant for every VM that lacks one.
                for vm in 0..self.instances[idx].slots.len() {
                    if self.instances[idx].grants[vm].is_some() {
                        continue;
                    }
                    let server = self.instances[idx].slots[vm].server;
                    let req = OverclockRequest {
                        vm: format!("svc{idx}-vm{vm}"),
                        cores: spec_cores,
                        target: plan.max_overclock(),
                        expected_utilization: m.cpu_utilization.clamp(0.0, 1.0),
                        duration: None,
                        priority: 1 + self.instances[idx].load as u32,
                        cause: self.instances[idx].wi.current_decision(),
                    };
                    match self.soas[server].request_overclock(now, req) {
                        Ok(id) => {
                            self.instances[idx].grants[vm] = Some(id);
                            self.grant_owner.insert((server, id), (idx, vm));
                        }
                        Err(_) => {
                            let deny = self.soas[server].last_admission_decision();
                            self.instances[idx].wi.notify_rejection_with_cause(deny);
                            self.instances[idx].last_deny_decision = deny;
                            self.instances[idx].last_deny_at = now;
                        }
                    }
                }
                // Escalate to scale-out when overclocking alone cannot hold
                // the SLO ("a combination of ScaleUp and ScaleOut via
                // SmartOClock provides the best performance").
                let fully_oc = self.instances[idx].grants.iter().all(Option::is_some);
                let slo = self.instances[idx].sim.spec().slo_ms();
                if fully_oc && m.tail_latency_ms > slo {
                    self.instances[idx].saturated_windows += 1;
                } else {
                    self.instances[idx].saturated_windows = 0;
                }
                if self.config.system.scales_out()
                    && self.instances[idx].saturated_windows >= 5
                    && now >= self.instances[idx].scale_cooldown_until
                {
                    self.instances[idx]
                        .pending_boots
                        .push(now + self.config.boot_delay);
                    self.instances[idx].scale_cooldown_until = now + SimDuration::from_secs(60);
                    self.instances[idx].saturated_windows = 0;
                }
            } else {
                // Stop overclocking.
                for vm in 0..self.instances[idx].slots.len() {
                    if let Some(id) = self.instances[idx].grants[vm].take() {
                        let server = self.instances[idx].slots[vm].server;
                        self.soas[server].end_overclock(now, id);
                        self.grant_owner.remove(&(server, id));
                        let cap = self.caps[server];
                        let f = cap.map_or(plan.turbo(), |c| plan.turbo().min(c));
                        self.instances[idx].sim.set_vm_frequency(vm, f);
                    }
                }
                if decision.scale_in
                    && self.instances[idx].sim.active_vms() > 1
                    && now >= self.instances[idx].scale_cooldown_until
                {
                    self.remove_vm(idx);
                    self.instances[idx].scale_cooldown_until = now + SimDuration::from_secs(60);
                }
            }
            // Corrective / proactive scale-out from the WI agent.
            if decision.scale_out > 0
                && self.config.system.scales_out()
                && now >= self.instances[idx].scale_cooldown_until
            {
                for _ in 0..decision.scale_out {
                    self.instances[idx]
                        .pending_boots
                        .push(now + self.config.boot_delay);
                }
                self.instances[idx].scale_cooldown_until = now + SimDuration::from_secs(60);
            }
        }
    }

    fn apply_soa_events(&mut self, _now: SimTime, server: usize, events: &[SoaEvent]) {
        let plan = self.model.plan();
        for event in events {
            match event {
                SoaEvent::SetFrequency { grant, frequency } => {
                    if let Some(&(idx, vm)) = self.grant_owner.get(&(server, *grant)) {
                        let cap = self.caps[server];
                        let f = cap.map_or(*frequency, |c| (*frequency).min(c));
                        if vm < self.instances[idx].sim.active_vms() {
                            self.instances[idx].sim.set_vm_frequency(vm, f);
                        }
                    }
                }
                SoaEvent::GrantEnded { grant, .. } => {
                    if let Some((idx, vm)) = self.grant_owner.remove(&(server, *grant)) {
                        if vm < self.instances[idx].grants.len() {
                            self.instances[idx].grants[vm] = None;
                            if vm < self.instances[idx].sim.active_vms() {
                                self.instances[idx].sim.set_vm_frequency(vm, plan.turbo());
                            }
                        }
                    }
                }
                SoaEvent::ExhaustionWarning {
                    resource, decision, ..
                } => {
                    if self.config.proactive_scaleout
                        && self.config.system == SystemKind::SmartOClock
                        && *resource == ExhaustedResource::Lifetime
                    {
                        // Tell every instance with a grant on this server.
                        let owners: Vec<usize> = self
                            .grant_owner
                            .iter()
                            .filter(|((s, _), _)| *s == server)
                            .map(|(_, &(idx, _))| idx)
                            .collect();
                        for idx in owners {
                            self.instances[idx]
                                .wi
                                .notify_exhaustion_with_cause(*decision);
                        }
                    }
                }
            }
        }
    }

    /// Per-server power with current VM placements, frequencies, and caps.
    fn server_powers(&self, metrics: &[VmMetrics]) -> Vec<Watts> {
        let plan = self.model.plan();
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        let total_servers = oc_server_count + self.config.mltrain_servers;
        let mut core_states: Vec<Vec<soc_power::model::CoreState>> =
            vec![Vec::new(); total_servers];
        for (idx, inst) in self.instances.iter().enumerate() {
            let util = metrics
                .get(idx)
                .map_or(0.0, |m| m.cpu_utilization.clamp(0.0, 1.0));
            for (vm, slot) in inst.slots.iter().enumerate() {
                if vm >= inst.sim.active_vms() {
                    continue;
                }
                let f = inst.sim.vm_frequency(vm);
                let f = self.caps[slot.server].map_or(f, |c| f.min(c));
                for _ in 0..slot.cores {
                    core_states[slot.server].push(soc_power::model::CoreState::new(util, f));
                }
            }
        }
        let mut powers = Vec::with_capacity(total_servers);
        for (s, states) in core_states.iter().enumerate() {
            if s < oc_server_count {
                if states.is_empty() && s >= self.config.socialnet_servers {
                    // An unallocated spare server is power-gated (its
                    // capacity is accounted to other tenants until used).
                    powers.push(Watts::ZERO);
                    continue;
                }
                let truncated: Vec<_> = states.iter().copied().take(self.model.cores()).collect();
                powers.push(self.model.server_power(&truncated));
            } else {
                // MLTrain server: uniform high utilization.
                let j = s - oc_server_count;
                let f = self.caps[s].unwrap_or(plan.turbo()).min(plan.turbo());
                powers.push(
                    self.model
                        .server_power_uniform(self.mltrain[j].utilization(), f),
                );
            }
        }
        powers
    }

    /// Prioritized capping: when the rack hits its limit, shed power from
    /// low-priority servers first by imposing frequency caps; clear caps
    /// once the rack is healthy again.
    fn apply_capping(
        &mut self,
        now: SimTime,
        signal: RackSignal,
        powers: &[Watts],
        metrics: &[VmMetrics],
    ) {
        let plan = self.model.plan();
        if signal != RackSignal::Capping {
            if !self.rack.is_capping() && self.caps.iter().any(Option::is_some) {
                let cleared = self.caps.iter().filter(|c| c.is_some()).count();
                for c in &mut self.caps {
                    *c = None;
                }
                for d in &mut self.cap_decisions {
                    *d = 0;
                }
                tm_event!(self.telemetry, now, Component::Harness, Severity::Info,
                    "caps_cleared", "servers" => cleared);
                // Restore throttled VMs: grants recover via the sOA feedback
                // loop; everyone else returns to turbo immediately.
                for idx in 0..self.instances.len() {
                    for vm in 0..self.instances[idx].slots.len() {
                        if vm < self.instances[idx].sim.active_vms()
                            && self.instances[idx].grants[vm].is_none()
                        {
                            self.instances[idx].sim.set_vm_frequency(vm, plan.turbo());
                        }
                    }
                }
            }
            return;
        }
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        if self.config.system == SystemKind::NaiveOClock {
            // NaiveOClock "on a power capping event splits the rack's budget
            // equally among the servers" (§V-A): an unprioritized slam that
            // degrades every workload on the rack, latency-critical or not —
            // the 30-50 % frequency hits §III describes.
            let slam = MegaHertz::new((plan.base().get() + plan.turbo().get()) / 2);
            let mut capped = Vec::new();
            for s in 0..powers.len() {
                if self.is_spare(s) {
                    continue;
                }
                self.caps[s] = Some(slam);
                capped.push(s);
            }
            self.trace_capping(now, &capped);
        } else {
            let candidates: Vec<CapCandidate> = powers
                .iter()
                .enumerate()
                .filter(|(s, _)| !self.is_spare(*s))
                .map(|(s, &draw)| CapCandidate {
                    index: s,
                    // Latency-critical servers are protected; MLTrain sheds
                    // first (prioritized capping, §II).
                    priority: if s < oc_server_count { 2 } else { 1 },
                    draw,
                    min_draw: self.model.idle().min(draw),
                })
                .collect();
            let sheds = prioritized_shed(&candidates, self.rack.limit() * 0.98);
            let mut capped = Vec::new();
            for (s, shed) in sheds {
                let target = powers[s] - shed;
                self.caps[s] = Some(self.cap_frequency_for(s, target, metrics));
                capped.push(s);
            }
            self.trace_capping(now, &capped);
        }
        // Apply caps to the queueing sims immediately.
        for idx in 0..self.instances.len() {
            for vm in 0..self.instances[idx].slots.len() {
                if vm >= self.instances[idx].sim.active_vms() {
                    continue;
                }
                let server = self.instances[idx].slots[vm].server;
                if let Some(cap) = self.caps[server] {
                    let f = self.instances[idx]
                        .sim
                        .vm_frequency(vm)
                        .min(cap)
                        .max(plan.base());
                    self.instances[idx].sim.set_vm_frequency(vm, f);
                }
            }
        }
    }

    /// Telemetry for a capping pass: one `cap_set` per newly capped server,
    /// and one `revoke` (reason `cap`) per overclocking grant on a capped
    /// server — a frequency cap below the granted target effectively revokes
    /// the grant until the rack recovers. Each `cap_set` gets a fresh
    /// decision id (remembered in `cap_decisions` for later SLO-miss
    /// attribution) caused by the tick's `rack_capping` alarm, and each
    /// `revoke` chains to the `cap_set` of its server.
    fn trace_capping(&mut self, now: SimTime, capped: &[usize]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let signal_cause = self.last_signal_decision;
        let mut newly_capped = vec![false; self.caps.len()];
        for &s in capped {
            newly_capped[s] = true;
            let cap = self.caps[s].map_or(0, MegaHertz::get);
            let cap_decision = self.telemetry.next_id();
            self.cap_decisions[s] = cap_decision;
            tm_event!(self.telemetry, now, Component::Harness, Severity::Error, "cap_set",
                "server" => s, "cap_mhz" => cap,
                "decision_id" => cap_decision, "cause_id" => signal_cause);
        }
        // One ordered pass over the grant map: BTreeMap iteration is sorted
        // by (server, grant), so the revoke order is deterministic by
        // construction — no post-hoc sort needed.
        let revoked: Vec<(usize, u64, usize, usize)> = self
            .grant_owner
            .iter()
            .filter(|((srv, _), _)| newly_capped[*srv])
            .map(|(&(srv, grant), &(idx, vm))| (srv, grant.0, idx, vm))
            .collect();
        for (server, grant, idx, vm) in revoked {
            tm_event!(self.telemetry, now, Component::Harness, Severity::Error, "revoke",
                "server" => server, "grant" => grant, "service" => idx, "vm" => vm,
                "reason" => "cap",
                "decision_id" => self.telemetry.next_id(),
                "cause_id" => self.cap_decisions[server]);
            self.telemetry
                .metrics(|m| m.inc_counter("harness_revokes", &[("reason", "cap".into())]));
        }
    }

    /// Highest frequency that keeps server `s` at or below `target` watts,
    /// modelling only the cores actually allocated on that server.
    fn cap_frequency_for(&self, s: usize, target: Watts, metrics: &[VmMetrics]) -> MegaHertz {
        let plan = self.model.plan();
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        // Busy-core equivalent: sum of (VM utilization x VM cores).
        let busy_cores = if s < oc_server_count {
            let mut total = 0.0;
            for (idx, inst) in self.instances.iter().enumerate() {
                for (vm, slot) in inst.slots.iter().enumerate() {
                    if slot.server == s && vm < inst.sim.active_vms() {
                        total +=
                            metrics.get(idx).map_or(0.0, |m| m.cpu_utilization) * slot.cores as f64;
                    }
                }
            }
            total
        } else {
            self.mltrain[s - oc_server_count].utilization() * self.model.cores() as f64
        };
        let mut levels = plan.levels();
        levels.reverse();
        for f in levels {
            let p = self.model.idle() + self.model.core_power(1.0, f) * busy_cores;
            if p <= target {
                return f;
            }
        }
        plan.base()
    }

    /// Recompute heterogeneous budgets from current demand (gOA role).
    fn refresh_budgets(&mut self, now: SimTime) {
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        let total_servers = oc_server_count + self.config.mltrain_servers;
        // MLTrain servers keep their regular draw; they never overclock.
        let plan = self.model.plan();
        let ml_power = self.model.server_power_uniform(0.85, plan.turbo());
        let mut demands = Vec::with_capacity(total_servers);
        for s in 0..oc_server_count {
            // Regular draw estimate: idle plus the allocated cores at a
            // typical utilization (tracks actual multi-tenant occupancy far
            // better than assuming the whole socket is busy).
            let allocated = self.free_core[s] as f64;
            let regular = if s >= self.config.socialnet_servers && allocated == 0.0 {
                Watts::ZERO // power-gated spare
            } else {
                self.model.idle() + self.model.core_power(0.5, plan.turbo()) * allocated
            };
            demands.push(DemandProfile {
                regular,
                overclock_demand: self.soas[s].overclock_demand().max(Watts::new(1.0)),
            });
        }
        for _ in 0..self.config.mltrain_servers {
            demands.push(DemandProfile {
                regular: ml_power,
                overclock_demand: Watts::ZERO,
            });
        }
        // Spares live in the adequately-provisioned second rack: their sOAs
        // get a fixed ample budget and do not participate in the rack-1
        // split.
        let rack1: Vec<usize> = (0..total_servers).filter(|&s| !self.is_spare(s)).collect();
        let rack1_demands: Vec<DemandProfile> = rack1.iter().map(|&s| demands[s]).collect();
        let budgets = if self.policy_kind.heterogeneous_budgets() {
            heterogeneous_split(self.rack.limit(), &rack1_demands)
        } else {
            vec![self.rack.limit() / rack1_demands.len() as f64; rack1_demands.len()]
        };
        if self.telemetry.is_enabled() {
            let allocated: f64 = budgets.iter().map(|b| b.get()).sum();
            tm_event!(self.telemetry, now, Component::Goa, Severity::Info, "budget_split",
                "rack" => 0usize,
                "servers" => budgets.len(),
                "rack_limit_w" => self.rack.limit().get(),
                "allocated_w" => allocated,
                "decision_id" => self.telemetry.next_id());
            self.telemetry
                .metrics(|m| m.inc_counter("goa_budget_splits", &[("rack", 0usize.into())]));
        }
        for (&s, &b) in rack1.iter().zip(&budgets) {
            if s < oc_server_count {
                // A dropped budget-update message leaves the sOA on its
                // previous (stale) budget until the next refresh cycle.
                if self
                    .faults
                    .drops_budget_update(now, FaultPlan::entity_id(0, s))
                {
                    continue;
                }
                self.soas[s].set_power_budget_at(now, b);
            }
        }
        let ample = self.model.server_power_uniform(1.0, plan.turbo()) * 1.2;
        for s in 0..oc_server_count {
            if self.is_spare(s)
                && !self
                    .faults
                    .drops_budget_update(now, FaultPlan::entity_id(0, s))
            {
                self.soas[s].set_power_budget_at(now, ample);
            }
        }
    }

    /// Whether server index `s` is in the spare pool (the second rack).
    fn is_spare(&self, s: usize) -> bool {
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        (self.config.socialnet_servers..oc_server_count).contains(&s)
    }

    fn add_vm(&mut self, idx: usize) {
        // Autoscaler max-replica guard (also bounds simulation memory).
        if self.instances[idx].slots.len() >= 4 {
            return;
        }
        let cores = self.instances[idx].sim.spec().cores_per_vm;
        let home = self.instances[idx].slots[0].server;
        let oc_server_count = self.config.socialnet_servers + self.config.spare_servers;
        // Scale-out targets spare servers first, consolidating (first-fit)
        // so unused spares stay power-gated; then other SocialNet servers,
        // then the home server as a last resort.
        // Spare servers take at most two VMs each (anti-affinity for burst
        // capacity, as production placement spreads VMs for resiliency);
        // SocialNet servers can be filled.
        let socialnet_servers = self.config.socialnet_servers;
        let fits = |s: &usize| {
            let cap = if *s >= socialnet_servers {
                2 * cores
            } else {
                self.model.cores()
            };
            self.free_core[*s] + cores <= cap
        };
        let first_fit = |pool: Vec<usize>| -> Option<usize> { pool.into_iter().find(|s| fits(s)) };
        let spare: Vec<usize> = (self.config.socialnet_servers..oc_server_count).collect();
        let social: Vec<usize> = (0..self.config.socialnet_servers)
            .filter(|&s| s != home)
            .collect();
        let Some(server) = first_fit(spare).or_else(|| first_fit(social)).or_else(|| {
            if fits(&home) {
                Some(home)
            } else {
                None
            }
        }) else {
            return; // No capacity anywhere: drop the scale-out.
        };
        let first_core = self.free_core[server];
        self.free_core[server] += cores;
        self.instances[idx].slots.push(VmSlot {
            server,
            first_core,
            cores,
        });
        self.instances[idx].grants.push(None);
        let n = self.instances[idx].slots.len();
        self.instances[idx].sim.set_active_vm_count(n);
    }

    fn remove_vm(&mut self, idx: usize) {
        // Keep at least one VM per instance; `pop` then always succeeds.
        if self.instances[idx].slots.len() <= 1 {
            return;
        }
        let Some(slot) = self.instances[idx].slots.pop() else {
            return;
        };
        if let Some(id) = self.instances[idx].grants.pop().flatten() {
            self.soas[slot.server].end_overclock(SimTime::ZERO, id);
            self.grant_owner.remove(&(slot.server, id));
        }
        // Return cores only if this was the most recent allocation.
        if self.free_core[slot.server] == slot.first_core + slot.cores {
            self.free_core[slot.server] = slot.first_core;
        }
        let n = self.instances[idx].slots.len();
        self.instances[idx].sim.set_active_vm_count(n);
    }

    fn finish(self) -> ClusterResult {
        let mut instances = Vec::new();
        let socialnet_servers = self.config.socialnet_servers;
        let mut energy_by_load = [0.0f64; 3];
        let mut count_by_load = [0usize; 3];
        for (i, inst) in self.instances.iter().enumerate() {
            let (p99, mean) = if inst.latencies.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                (
                    simcore::stats::percentile(&inst.latencies, 99.0),
                    simcore::stats::mean(&inst.latencies),
                )
            };
            let load_idx = match inst.load {
                LoadLevel::Low => 0,
                LoadLevel::Medium => 1,
                LoadLevel::High => 2,
            };
            if i < socialnet_servers {
                energy_by_load[load_idx] += self.per_server_energy[i];
                count_by_load[load_idx] += 1;
            }
            instances.push(InstanceResult {
                name: inst.sim.spec().name.clone(),
                load: inst.load,
                p99_ms: p99,
                mean_ms: mean,
                slo_ms: inst.sim.spec().slo_ms(),
                missed: inst.missed,
                completed: inst.completed,
                violation_window_frac: if inst.windows == 0 {
                    0.0
                } else {
                    inst.violation_windows as f64 / inst.windows as f64
                },
            });
        }
        for (e, c) in energy_by_load.iter_mut().zip(count_by_load) {
            if c > 0 {
                *e /= c as f64;
            }
        }
        let avg_active_vms = if self.vm_count_samples.is_empty() {
            0.0
        } else {
            simcore::stats::mean(&self.vm_count_samples)
        };
        let mlt = if self.mltrain.is_empty() {
            1.0
        } else {
            self.mltrain
                .iter()
                .map(|j| j.relative_throughput())
                .sum::<f64>()
                / self.mltrain.len() as f64
        };
        let (granted, total) = self.soas.iter().fold((0, 0), |(g, t), s| {
            (g + s.stats().granted, t + s.stats().requests)
        });
        ClusterResult {
            system: self.config.system,
            instances,
            avg_active_vms,
            total_energy_j: self.total_energy_j,
            socialnet_energy_j: self.socialnet_energy_j,
            per_server_energy_by_load: energy_by_load,
            mltrain_relative_throughput: mlt,
            capping_events: self.capped_ticks,
            oc_requests: (granted, total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(system: SystemKind) -> ClusterResult {
        ClusterSim::new(ClusterConfig::small_test(system)).run()
    }

    #[test]
    fn all_systems_complete_and_account() {
        for system in SystemKind::ALL {
            let r = run_small(system);
            assert_eq!(r.system, system);
            assert_eq!(r.instances.len(), 3);
            assert!(r.total_energy_j > 0.0, "{system}: energy must accumulate");
            assert!(
                r.avg_active_vms >= 3.0 - 1e-9,
                "{system}: at least one VM per instance"
            );
            assert!(
                r.instances.iter().all(|i| i.completed > 0),
                "{system}: requests must complete"
            );
        }
    }

    #[test]
    fn baseline_never_scales_or_overclocks() {
        let r = run_small(SystemKind::Baseline);
        assert_eq!(r.oc_requests, (0, 0));
        assert!((r.avg_active_vms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn smartoclock_issues_overclock_requests() {
        let r = run_small(SystemKind::SmartOClock);
        assert!(
            r.oc_requests.1 > 0,
            "high-load instances should trigger requests"
        );
        assert!(r.oc_requests.0 <= r.oc_requests.1);
    }

    #[test]
    fn smartoclock_tail_not_worse_than_baseline_at_high_load() {
        let base = run_small(SystemKind::Baseline);
        let smart = run_small(SystemKind::SmartOClock);
        let b = base.p99_by_load(LoadLevel::High);
        let s = smart.p99_by_load(LoadLevel::High);
        assert!(
            s <= b * 1.10,
            "SmartOClock P99 {s} should not regress over Baseline {b}"
        );
    }

    #[test]
    fn scaleout_uses_more_vms_than_smartoclock() {
        let scale = run_small(SystemKind::ScaleOut);
        let smart = run_small(SystemKind::SmartOClock);
        assert!(
            smart.avg_active_vms <= scale.avg_active_vms + 1e-9,
            "SmartOClock ({}) should not use more VMs than ScaleOut ({})",
            smart.avg_active_vms,
            scale.avg_active_vms
        );
    }

    #[test]
    fn power_constrained_run_caps_naive_more_than_smart() {
        let mut naive_cfg = ClusterConfig::small_test(SystemKind::NaiveOClock);
        naive_cfg.rack_limit_scale = 0.8;
        let naive = ClusterSim::new(naive_cfg).run();
        let mut smart_cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
        smart_cfg.rack_limit_scale = 0.8;
        let smart = ClusterSim::new(smart_cfg).run();
        assert!(
            smart.capping_events <= naive.capping_events,
            "SmartOClock ({}) should cap no more than NaiveOClock ({})",
            smart.capping_events,
            naive.capping_events
        );
    }

    #[test]
    fn violation_window_frac_is_bounded() {
        let r = run_small(SystemKind::SmartOClock);
        let v = r.violation_window_frac();
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn faulted_run_completes_and_stays_deterministic() {
        let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
        cfg.faults.seed = 11;
        cfg.faults.goa_outages = 1;
        cfg.faults.goa_outage_len = SimDuration::from_minutes(2);
        cfg.faults.budget_drop_prob = 0.25;
        cfg.faults.soa_restart_prob = 0.05;
        let a = ClusterSim::new(cfg.clone()).run();
        let b = ClusterSim::new(cfg).run();
        assert!(a.total_energy_j > 0.0);
        assert!(a.instances.iter().all(|i| i.completed > 0));
        assert_eq!(a, b, "same fault seed must reproduce the same run");
    }

    #[test]
    fn zero_probability_fault_plan_matches_unfaulted_run() {
        let clean = run_small(SystemKind::SmartOClock);
        let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
        cfg.faults.seed = 999; // seed is irrelevant when nothing can fire
        let noop = ClusterSim::new(cfg).run();
        assert_eq!(clean, noop);
    }

    #[test]
    fn uniform_binning_config_matches_default_run() {
        let clean = run_small(SystemKind::SmartOClock);
        let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
        cfg.binning.seed = 777; // irrelevant: a single-bin fleet draws nothing
        cfg.binning.risk_budget = 0.4; // irrelevant: uniform parts have risk 0
        let uniform = ClusterSim::new(cfg).run();
        assert_eq!(clean, uniform);
    }

    #[test]
    fn aggressive_binning_denies_all_overclocking() {
        // Eight bins under a zero risk budget: every part has nonzero risk,
        // so every overclock request is bin-denied at admission.
        let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
        cfg.binning.bins = 8;
        cfg.binning.risk_budget = 0.0;
        cfg.binning.seed = 5;
        let r = ClusterSim::new(cfg.clone()).run();
        assert!(r.oc_requests.1 > 0, "requests must still be issued");
        assert_eq!(r.oc_requests.0, 0, "zero budget must deny every part");
        let again = ClusterSim::new(cfg).run();
        assert_eq!(r, again, "binned runs stay deterministic");
    }

    #[test]
    fn binned_fleet_grants_fewer_requests_than_uniform() {
        let clean = run_small(SystemKind::SmartOClock);
        let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
        cfg.binning.bins = 8;
        cfg.binning.risk_budget = 0.25;
        cfg.binning.wear_spread = 0.3;
        cfg.binning.seed = 5;
        let binned = ClusterSim::new(cfg).run();
        assert!(
            binned.oc_requests.0 <= clean.oc_requests.0,
            "a binned fleet ({} grants) cannot out-grant a uniform one ({})",
            binned.oc_requests.0,
            clean.oc_requests.0
        );
    }
}

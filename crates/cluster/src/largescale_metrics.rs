//! Outcome containers and Table I aggregation for the large-scale sim.

use serde::{Deserialize, Serialize};
use smartoclock::policy::PolicyKind;
use soc_power::units::Watts;

/// Raw per-rack counters from one policy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackOutcome {
    /// Rack index.
    pub rack: usize,
    /// Mean baseline rack power utilization (for High/Medium/Low grouping).
    pub mean_utilization: f64,
    /// Evaluated steps.
    pub steps: u64,
    /// Steps during which the rack was at or over its limit.
    pub capping_steps: u64,
    /// Distinct capping events (consecutive over-limit steps count once).
    pub capping_events: u64,
    /// Overclocking requests (one per server per step with demand).
    pub requests: u64,
    /// Requests granted at admission.
    pub granted: u64,
    /// Sum of frequency penalties over capping steps (see
    /// [`record_penalty`](Self::record_penalty)).
    pub penalty_sum: f64,
    /// Number of penalty observations (capping steps).
    pub penalty_samples: u64,
    /// Sum of effective speedups over demand-server-steps.
    pub perf_sum: f64,
    /// Number of demand-server-steps.
    pub perf_samples: u64,
    /// Steps on which the post-enforcement rack draw still exceeded the
    /// contracted limit — the paper's safety invariant violated. Stays zero
    /// under SmartOClock even with fault injection; only a fail-open
    /// centralized baseline accrues these.
    #[serde(default)]
    pub violation_steps: u64,
    /// Steps spent running on stale budgets (gOA unreachable).
    #[serde(default)]
    pub stale_budget_steps: u64,
    /// Injected sOA restarts.
    #[serde(default)]
    pub restarts: u64,
    /// Highest post-enforcement rack draw observed.
    #[serde(default)]
    pub max_draw: Watts,
    /// The contracted rack power limit; zero until the sim sets it.
    #[serde(default)]
    pub limit: Watts,
    /// Servers whose binned silicon was denied all overclocking by the
    /// configured risk budget (counted once per rack run; zero for the
    /// uniform fleet).
    #[serde(default)]
    pub bin_denied: u64,
    /// Servers risk-admitted below the plan's maximum overclock
    /// (down-binned; counted once per rack run).
    #[serde(default)]
    pub down_binned: u64,
    /// Accumulated per-part overclock ageing across the rack's servers, in
    /// days of lifetime (zero for the uniform fleet, where wear accounting
    /// is not attributed per part).
    #[serde(default)]
    pub wear_days: f64,
}

impl RackOutcome {
    /// Fresh counters for a rack.
    pub fn new(rack: usize, mean_utilization: f64) -> RackOutcome {
        RackOutcome {
            rack,
            mean_utilization,
            steps: 0,
            capping_steps: 0,
            capping_events: 0,
            requests: 0,
            granted: 0,
            penalty_sum: 0.0,
            penalty_samples: 0,
            perf_sum: 0.0,
            perf_samples: 0,
            violation_steps: 0,
            stale_budget_steps: 0,
            restarts: 0,
            max_draw: Watts::ZERO,
            limit: Watts::ZERO,
            bin_denied: 0,
            down_binned: 0,
            wear_days: 0.0,
        }
    }

    /// Record the frequency penalty non-overclocked servers suffered during
    /// one capping step.
    pub fn record_penalty(&mut self, frequency_penalty: f64) {
        self.penalty_sum += frequency_penalty;
        self.penalty_samples += 1;
    }

    /// Request success rate (1.0 when no requests).
    pub fn success_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.granted as f64 / self.requests as f64
        }
    }
}

/// Aggregated Table I row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyMetrics {
    /// The policy.
    pub policy: PolicyKind,
    /// Total capping events across racks (consecutive over-limit steps
    /// merged).
    pub capping_events: u64,
    /// Total capped steps across racks (the paper-comparable "number of
    /// power caps": every enforcement interval at or over the limit).
    pub capping_steps: u64,
    /// Total requests.
    pub requests: u64,
    /// Total granted.
    pub granted: u64,
    /// Overall success rate.
    pub success_rate: f64,
    /// Mean frequency penalty during capping events (the paper's "Penalty on
    /// Power Cap").
    pub capping_penalty: f64,
    /// Mean effective speedup over turbo for demand servers (the paper's
    /// "Norm. Performance"; max turbo = 1.0, full overclock ≈ 1.21).
    pub normalized_performance: f64,
    /// Total steps with the post-enforcement draw above the rack limit
    /// (power-budget violations; the chaos suite pins this at zero for
    /// SmartOClock).
    #[serde(default)]
    pub violation_steps: u64,
    /// Total steps spent on stale budgets (gOA unreachable).
    #[serde(default)]
    pub stale_budget_steps: u64,
    /// Total injected sOA restarts.
    #[serde(default)]
    pub restarts: u64,
    /// Total servers denied all overclocking by per-part risk binning.
    #[serde(default)]
    pub bin_denied: u64,
    /// Total servers risk-admitted below the maximum overclock.
    #[serde(default)]
    pub down_binned: u64,
    /// Total per-part overclock ageing across the fleet, in days.
    #[serde(default)]
    pub wear_days: f64,
}

impl PolicyMetrics {
    /// Aggregate per-rack outcomes into one row.
    pub fn aggregate(policy: PolicyKind, outcomes: &[RackOutcome]) -> PolicyMetrics {
        let capping_events = outcomes.iter().map(|o| o.capping_events).sum();
        let capping_steps = outcomes.iter().map(|o| o.capping_steps).sum();
        let requests: u64 = outcomes.iter().map(|o| o.requests).sum();
        let granted: u64 = outcomes.iter().map(|o| o.granted).sum();
        let penalty_sum: f64 = outcomes.iter().map(|o| o.penalty_sum).sum();
        let penalty_samples: u64 = outcomes.iter().map(|o| o.penalty_samples).sum();
        let perf_sum: f64 = outcomes.iter().map(|o| o.perf_sum).sum();
        let perf_samples: u64 = outcomes.iter().map(|o| o.perf_samples).sum();
        PolicyMetrics {
            policy,
            capping_events,
            capping_steps,
            requests,
            granted,
            success_rate: if requests == 0 {
                1.0
            } else {
                granted as f64 / requests as f64
            },
            capping_penalty: if penalty_samples == 0 {
                0.0
            } else {
                penalty_sum / penalty_samples as f64
            },
            normalized_performance: if perf_samples == 0 {
                1.0
            } else {
                perf_sum / perf_samples as f64
            },
            violation_steps: outcomes.iter().map(|o| o.violation_steps).sum(),
            stale_budget_steps: outcomes.iter().map(|o| o.stale_budget_steps).sum(),
            restarts: outcomes.iter().map(|o| o.restarts).sum(),
            bin_denied: outcomes.iter().map(|o| o.bin_denied).sum(),
            down_binned: outcomes.iter().map(|o| o.down_binned).sum(),
            wear_days: outcomes.iter().map(|o| o.wear_days).sum(),
        }
    }
}

/// Split racks into High/Medium/Low power groups by mean utilization
/// terciles (Table I's cluster grouping). Returns `(high, medium, low)`
/// rack-index sets based on the provided outcomes.
pub fn power_groups(outcomes: &[RackOutcome]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut order: Vec<(usize, f64)> = outcomes
        .iter()
        .map(|o| (o.rack, o.mean_utilization))
        .collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1));
    let n = order.len();
    let high: Vec<usize> = order.iter().take(n / 3).map(|&(r, _)| r).collect();
    let medium: Vec<usize> = order
        .iter()
        .skip(n / 3)
        .take(n - 2 * (n / 3))
        .map(|&(r, _)| r)
        .collect();
    let low: Vec<usize> = order.iter().skip(n - n / 3).map(|&(r, _)| r).collect();
    (high, medium, low)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(rack: usize, util: f64, requests: u64, granted: u64, caps: u64) -> RackOutcome {
        let mut o = RackOutcome::new(rack, util);
        o.requests = requests;
        o.granted = granted;
        o.capping_events = caps;
        o.perf_sum = granted as f64 * 1.21 + (requests - granted) as f64;
        o.perf_samples = requests;
        o
    }

    #[test]
    fn success_rate_handles_zero_requests() {
        let o = RackOutcome::new(0, 0.5);
        assert_eq!(o.success_rate(), 1.0);
    }

    #[test]
    fn aggregate_pools_counters() {
        let outcomes = vec![outcome(0, 0.7, 100, 90, 2), outcome(1, 0.5, 50, 25, 1)];
        let m = PolicyMetrics::aggregate(PolicyKind::SmartOClock, &outcomes);
        assert_eq!(m.capping_events, 3);
        assert_eq!(m.requests, 150);
        assert_eq!(m.granted, 115);
        assert!((m.success_rate - 115.0 / 150.0).abs() < 1e-12);
        assert!(m.normalized_performance > 1.0 && m.normalized_performance < 1.21);
    }

    #[test]
    fn aggregate_of_no_outcomes_is_neutral() {
        let m = PolicyMetrics::aggregate(PolicyKind::Central, &[]);
        assert_eq!(m.requests, 0);
        assert_eq!(m.granted, 0);
        assert_eq!(m.capping_events, 0);
        assert_eq!(m.capping_steps, 0);
        assert_eq!(m.success_rate, 1.0);
        assert_eq!(m.capping_penalty, 0.0);
        assert_eq!(m.normalized_performance, 1.0);
    }

    #[test]
    fn aggregate_sums_capping_steps_separately_from_events() {
        let mut a = RackOutcome::new(0, 0.8);
        a.capping_steps = 7;
        a.capping_events = 2; // one long + one short excursion
        let mut b = RackOutcome::new(1, 0.6);
        b.capping_steps = 3;
        b.capping_events = 3;
        let m = PolicyMetrics::aggregate(PolicyKind::NoFeedback, &[a, b]);
        assert_eq!(m.capping_steps, 10);
        assert_eq!(m.capping_events, 5);
    }

    #[test]
    fn success_rate_pools_requests_not_rates() {
        // 90/100 and 0/50 pooled is 60%, not the 45% a mean-of-rates gives.
        let outcomes = vec![outcome(0, 0.7, 100, 90, 0), outcome(1, 0.5, 50, 0, 0)];
        let m = PolicyMetrics::aggregate(PolicyKind::SmartOClock, &outcomes);
        assert!((m.success_rate - 0.6).abs() < 1e-12);
    }

    #[test]
    fn penalty_averages_over_capping_steps() {
        let mut o = RackOutcome::new(0, 0.9);
        o.record_penalty(0.2);
        o.record_penalty(0.4);
        let m = PolicyMetrics::aggregate(PolicyKind::NaiveOClock, &[o]);
        assert!((m.capping_penalty - 0.3).abs() < 1e-12);
    }

    #[test]
    fn groups_are_disjoint_and_cover() {
        let outcomes: Vec<RackOutcome> = (0..9)
            .map(|i| RackOutcome::new(i, i as f64 / 10.0))
            .collect();
        let (high, medium, low) = power_groups(&outcomes);
        assert_eq!(high.len(), 3);
        assert_eq!(medium.len(), 3);
        assert_eq!(low.len(), 3);
        let mut all: Vec<usize> = high.iter().chain(&medium).chain(&low).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        // Highest utilization racks are in `high`.
        assert!(high.contains(&8));
        assert!(low.contains(&0));
    }
}

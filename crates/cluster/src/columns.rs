//! Columnar (struct-of-arrays) rack simulation engine.
//!
//! The production hot path behind [`crate::largescale::simulate_rack_probed`].
//! Where the retained reference engine
//! ([`crate::largescale::simulate_rack_reference`]) keeps a `Vec<ServerState>`
//! of structs and calls `PowerTemplate::predict` / `TimeSeries::value_at` per
//! server per step, this engine keeps every mutable field as its own column
//! ([`ServerColumns`]), hoists the per-step sample index and template slot
//! out of the inner server loop, and reuses one set of per-step scratch
//! buffers ([`StepBuffers`]) for the whole run — so power aggregation is a
//! linear scan over a `f64` column and steady-state allocation count does not
//! scale with simulated steps.
//!
//! **Byte-determinism contract.** Output (outcomes, telemetry events,
//! metrics, decision ids) must be byte-identical to the reference engine.
//! Three rules keep the transformation safe:
//!
//! 1. every floating-point operation whose result reaches an output happens
//!    in the same order on the same values (accumulators fold left-to-right
//!    over servers in rack order, exactly as the reference's `+=` loops);
//! 2. only *pure* computations are cached or batched (`TimeSeries::index_at`
//!    replaces repeated `value_at` divisions; `TemplateSlot` replaces
//!    repeated `SimTime` decompositions — both provably return the values
//!    the per-call forms would);
//! 3. computations whose results reach no output may be skipped (the central
//!    oracle's running rack total is not computed for decentralized
//!    policies), and allocations never affect results.
//!
//! `tests/equivalence.rs` pins the contract across seeds × thread counts ×
//! fault plans, and `par_speedup` re-asserts outcome agreement on every
//! benchmark run.

use crate::largescale::{
    emit_binning_events, resolve_rack_silicon, LargeScaleConfig, TrainedRack, TrainedServer,
};
use crate::largescale_metrics::RackOutcome;
use crate::probe::ShardProbe;
use simcore::faults::FaultPlan;
use simcore::time::{SimDuration, SimTime};
use smartoclock::epoch::EpochTracker;
use smartoclock::goa::GlobalOverclockAgent;
use smartoclock::policy::PolicyKind;
use soc_power::hierarchy::DemandProfile;
use soc_power::model::{OverclockDeltaFn, PowerModel};
use soc_power::rack::RackMonitor;
use soc_power::units::{MegaHertz, Watts};
use soc_predict::template::TemplateSlot;
use soc_telemetry::{tm_event, Component, Severity, Telemetry};
use soc_traces::fleet::{RackTrace, ServerSeriesView};

/// Per-server mutable control state as parallel columns, one slot per server
/// in rack order. The safe API never exposes unchecked indexing: column
/// passes are zipped iterations, so all-columns updates stay in lockstep by
/// construction.
#[derive(Debug, Clone)]
pub struct ServerColumns {
    budget: Vec<Watts>,
    explore_extra: Vec<Watts>,
    backoff_steps: Vec<u32>,
    backoff_remaining: Vec<u32>,
    /// Remaining overclock time this week.
    oc_remaining: Vec<SimDuration>,
    /// A budget update delayed in flight (fault injection): applied once
    /// sim time reaches the delivery instant.
    pending_budget: Vec<Option<(SimTime, Watts)>>,
}

impl ServerColumns {
    /// Fresh state for `n` servers, each with a full weekly overclock
    /// allowance, zero budget, and no exploration or backoff state.
    pub fn new(n: usize, weekly_allowance: SimDuration) -> ServerColumns {
        ServerColumns {
            budget: vec![Watts::ZERO; n],
            explore_extra: vec![Watts::ZERO; n],
            backoff_steps: vec![0; n],
            backoff_remaining: vec![0; n],
            oc_remaining: vec![weekly_allowance; n],
            pending_budget: vec![None; n],
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.budget.len()
    }

    /// `true` when there are no servers.
    pub fn is_empty(&self) -> bool {
        self.budget.is_empty()
    }

    /// Weekly epoch boundary: refresh every server's lifetime allowance.
    pub fn refresh_allowances(&mut self, weekly_allowance: SimDuration) {
        self.oc_remaining.fill(weekly_allowance);
    }

    /// Delayed budget updates mature: any pending update whose delivery
    /// instant has been reached replaces the live budget.
    pub fn mature_pending(&mut self, t: SimTime) {
        for (budget, pending) in self.budget.iter_mut().zip(self.pending_budget.iter_mut()) {
            if let Some((due, b)) = *pending {
                if t >= due {
                    *budget = b;
                    *pending = None;
                }
            }
        }
    }

    /// Read-only view of the remaining weekly overclock allowances.
    pub fn oc_remaining(&self) -> &[SimDuration] {
        &self.oc_remaining
    }

    /// Read-only view of the live per-server budgets.
    pub fn budgets(&self) -> &[Watts] {
        &self.budget
    }
}

/// Per-step scratch columns, allocated once per rack run and reused every
/// step (cleared + refilled in place), so the steady state allocates
/// nothing.
#[derive(Debug, Default)]
pub struct StepBuffers {
    /// Per-server baseline power draw this step, watts.
    base_w: Vec<f64>,
    /// Per-server regular-power template prediction this step.
    predicted: Vec<f64>,
    /// Granted overclock extras this step.
    extras: Vec<Watts>,
    /// Server requested overclocking this step.
    wanted: Vec<bool>,
    /// Request was admitted this step.
    granted: Vec<bool>,
    /// Effective speedup of demand servers this step.
    perf: Vec<f64>,
    /// Demand profiles exchanged with the gOA on refresh steps.
    demands: Vec<DemandProfile>,
    /// Budgets computed by the gOA on refresh steps.
    budgets: Vec<Watts>,
    /// Capping revoke order: `(server, extra)` pairs, largest extra first.
    order: Vec<(usize, Watts)>,
}

impl StepBuffers {
    /// Buffers pre-sized for `n` servers.
    pub fn with_capacity(n: usize) -> StepBuffers {
        StepBuffers {
            base_w: Vec::with_capacity(n),
            predicted: Vec::with_capacity(n),
            extras: Vec::with_capacity(n),
            wanted: Vec::with_capacity(n),
            granted: Vec::with_capacity(n),
            perf: Vec::with_capacity(n),
            demands: Vec::with_capacity(n),
            budgets: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
        }
    }
}

/// Batched baseline-power read for one step: fills `out` with every server's
/// power sample at slot `idx` (0.0 past the end of a trace, matching
/// `TimeSeries::value_at(t).unwrap_or(0.0)`) and returns the rack total,
/// folded left-to-right in server order.
pub fn fill_base_power(views: &[ServerSeriesView<'_>], idx: usize, out: &mut Vec<f64>) -> Watts {
    out.clear();
    let mut total = Watts::ZERO;
    out.extend(views.iter().map(|v| {
        let w = v.power.get(idx).copied().unwrap_or(0.0);
        total += Watts::new(w);
        w
    }));
    total
}

/// Batched template prediction for one step: fills `out` with every server's
/// regular-power prediction at the precomputed slot.
pub fn fill_predictions(servers: &[TrainedServer], slot: TemplateSlot, out: &mut Vec<f64>) {
    out.clear();
    out.extend(servers.iter().map(|s| s.template.predict_at(slot)));
}

/// Memoized per-slot template predictions and gOA budget rows for one rack
/// run.
///
/// Every field of [`TemplateSlot`] (`time_of_day`, `time_of_week`,
/// `weekday`) is periodic in `t` with period one week, so when the step
/// divides a week evenly the tick at step `k` and the tick at step
/// `k + slots_per_week` land on the *same* slot and therefore the same
/// prediction. The tables evaluate `predict_at` once per (weekly slot ×
/// server) up front and replay the identical `f64`s on every later week —
/// pure-function memoization, rule 2 of the module contract. gOA budget
/// rows are themselves a pure function of the demand row (the agent is
/// stateless), so each row is computed the first time its slot is visited
/// and replayed afterwards.
struct SlotTables {
    /// Weekly slot count (`WEEK / step`); the table period.
    slots: usize,
    /// Servers per row.
    n: usize,
    /// Raw `template.predict_at` per server, slot-major: `[w * n + i]`.
    regular: Vec<f64>,
    /// Raw `demand_template.predict_at` per server, slot-major.
    demand: Vec<f64>,
    /// gOA budgets per server, slot-major, rows filled lazily.
    budgets: Vec<Watts>,
    /// Which budget rows have been computed.
    budgets_ready: Vec<bool>,
}

impl SlotTables {
    /// Build the prediction tables for one rack's evaluation ticks starting
    /// at `start`, or `None` when the step does not divide a week evenly
    /// (ticks then drift across week boundaries and slots stop repeating,
    /// so callers must fall back to per-step prediction).
    fn build(servers: &[TrainedServer], start: SimTime, step: SimDuration) -> Option<SlotTables> {
        let week = SimDuration::WEEK.as_micros();
        let step_us = step.as_micros();
        if step_us == 0 || !week.is_multiple_of(step_us) {
            return None;
        }
        let slots = (week / step_us) as usize;
        let n = servers.len();
        let mut regular = Vec::with_capacity(slots * n);
        let mut demand = Vec::with_capacity(slots * n);
        let mut t = start;
        for _ in 0..slots {
            // The exact pure calls the per-step path would make at this tick
            // (and at this tick plus any whole number of weeks).
            let slot = TemplateSlot::at(t, step);
            regular.extend(servers.iter().map(|s| s.template.predict_at(slot)));
            demand.extend(servers.iter().map(|s| s.demand_template.predict_at(slot)));
            t += step;
        }
        Some(SlotTables {
            slots,
            n,
            regular,
            demand,
            budgets: vec![Watts::ZERO; slots * n],
            budgets_ready: vec![false; slots],
        })
    }

    /// Weekly slot index of evaluation step `k` (steps since the first
    /// evaluated tick).
    fn slot_of_step(&self, k: u64) -> usize {
        (k % self.slots as u64) as usize
    }

    /// `true` when slot `w`'s budget row has been computed and stored.
    fn budgets_ready(&self, w: usize) -> bool {
        self.budgets_ready.get(w).copied().unwrap_or(false)
    }

    // Row accessors are non-panicking by construction: `w` always comes
    // from `slot_of_step`, so `w < slots` and the range is in bounds; the
    // `get` forms keep that a structural fact rather than a runtime panic
    // path (an out-of-range row would read empty, never abort a shard).

    fn regular_row(&self, w: usize) -> &[f64] {
        self.regular
            .get(w * self.n..(w + 1) * self.n)
            .unwrap_or(&[])
    }

    fn demand_row(&self, w: usize) -> &[f64] {
        self.demand.get(w * self.n..(w + 1) * self.n).unwrap_or(&[])
    }

    fn budgets_row(&self, w: usize) -> &[Watts] {
        self.budgets
            .get(w * self.n..(w + 1) * self.n)
            .unwrap_or(&[])
    }

    fn store_budgets(&mut self, w: usize, row: &[Watts]) {
        for (dst, src) in self.budgets.iter_mut().skip(w * self.n).zip(row) {
            *dst = *src;
        }
        if let Some(ready) = self.budgets_ready.get_mut(w) {
            *ready = true;
        }
    }
}

/// Columnar counterpart of
/// [`crate::largescale::simulate_rack_reference`]; see the module docs for
/// the byte-determinism contract.
pub(crate) fn simulate_rack_columnar(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
    trained: &TrainedRack,
    telemetry: &Telemetry,
    probe: &dyn ShardProbe,
) -> RackOutcome {
    let plan = model.plan();
    let oc_freq = plan.max_overclock();
    // Frequency factors of the admission-time overclock delta, hoisted out
    // of the per-server loop (bit-identical per `overclock_delta_fn` docs).
    let oc_delta = model.overclock_delta_fn(oc_freq);
    let train_end = SimTime::ZERO + SimDuration::WEEK;
    let trace_end = SimTime::ZERO + SimDuration::WEEK * config.weeks;
    // The fault schedule covers the evaluation weeks only; it is a pure
    // function of the plan config, so every shard realizes the same
    // timeline regardless of execution order.
    let faults = FaultPlan::generate(&config.faults, train_end, trace_end);
    let weekly_allowance = SimDuration::WEEK.mul_f64(config.oc_time_fraction);
    let n = rack.servers.len();
    // Per-part silicon (None for the default uniform fleet): binned
    // admission levels, hoisted wear rates, deny/down-bin counts.
    let silicon = resolve_rack_silicon(config, rack.index, n, model);
    let step_days = config.step.as_days_f64();
    /// Compact `bin_id` marker for servers whose part admits no overclock.
    const BIN_DENIED: u32 = u32::MAX;
    // Per-bin factor tables, keyed by the compact per-server `bin_id`
    // column: one overclock-delta fn and one turbo ratio per distinct
    // risk-admitted frequency level. The uniform fleet collapses to a
    // single level at `plan.max_overclock()` — exactly the pre-binning
    // hoist, so the degenerate config replays the same floats.
    let (bin_ids, bin_delta, bin_ratio): (Vec<u32>, Vec<OverclockDeltaFn>, Vec<f64>) =
        match &silicon {
            None => (
                vec![0; n],
                vec![oc_delta],
                vec![oc_freq.ratio(plan.turbo())],
            ),
            Some(s) => {
                let mut levels: Vec<MegaHertz> = s.eff.iter().copied().flatten().collect();
                levels.sort_unstable();
                levels.dedup();
                let ids = s
                    .eff
                    .iter()
                    .map(|e| match e {
                        Some(f) => levels.binary_search(f).map_or(BIN_DENIED, |k| k as u32),
                        None => BIN_DENIED,
                    })
                    .collect();
                let delta = levels
                    .iter()
                    .map(|&f| model.overclock_delta_fn(f))
                    .collect();
                let ratio = levels.iter().map(|&f| f.ratio(plan.turbo())).collect();
                (ids, delta, ratio)
            }
        };
    let mut cols = ServerColumns::new(n, weekly_allowance);
    let mut buf = StepBuffers::with_capacity(n);
    // Weekly-periodic prediction/budget memo (None for steps that don't
    // divide a week; every shipped config divides, so the per-step fallback
    // is reachable only through the `disable_slot_memo` kill switch).
    let mut tables = if config.disable_slot_memo {
        None
    } else {
        SlotTables::build(&trained.servers, train_end, config.step)
    };
    // Borrowed raw-sample slices, hoisted once per rack: all per-server
    // series share the trace's start (time zero) and step, so one slot index
    // per step addresses every column.
    let views: Vec<ServerSeriesView<'_>> = rack.servers.iter().map(|s| s.view()).collect();
    let admission_checked = policy.admission_checked();
    let central = policy.is_central();
    let decentral_check = admission_checked && !central;

    let mut monitor = RackMonitor::new(rack.limit, 0.95);
    let mut outcome = RackOutcome::new(rack.index, rack.mean_utilization());
    outcome.limit = rack.limit;
    let mut warned_last_step = false;
    let mut epochs = EpochTracker::weekly();
    let goa = GlobalOverclockAgent::new(rack.limit, policy);
    let mut goa_was_down = false;
    let mut degraded_decision = 0u64;
    let mut dropped_updates = 0u64;
    let mut delayed_updates = 0u64;
    let mut telemetry_gaps = 0u64;
    let sim_decision = telemetry.next_id();
    // The contracted limit as a (constant) health series, so draw can be
    // reported as a fraction of it.
    probe.gauge(
        train_end.as_micros(),
        "rack_limit_w",
        rack.index as u64,
        rack.limit.get(),
    );
    tm_event!(telemetry, train_end, Component::Sim, Severity::Info, "rack_sim_start",
        "rack" => rack.index,
        "policy" => policy.name(),
        "servers" => rack.servers.len(),
        "limit_w" => rack.limit.get(),
        "decision_id" => sim_decision);
    if let Some(s) = &silicon {
        emit_binning_events(
            s,
            telemetry,
            train_end,
            rack.index,
            policy,
            plan.max_overclock(),
            sim_decision,
        );
        outcome.bin_denied = s.bin_denied;
        outcome.down_binned = s.down_binned;
    }

    let mut t = train_end;
    while t < trace_end {
        // Weekly epoch boundary: refresh lifetime allowances. This is the
        // only cross-step coupling point; between boundaries every rack
        // evolves independently, which is what lets the sharded engine
        // (`crate::shard`) deal whole racks across worker threads.
        if epochs.advance(t).is_some() {
            cols.refresh_allowances(weekly_allowance);
        }
        // Delayed budget updates (fault injection) mature first: a message
        // sent during an earlier step finally lands.
        cols.mature_pending(t);
        // Sample slot and template slot for this instant, computed once and
        // shared by every per-server read below (the batched-lookup hoist).
        let idx = rack.power.index_at(t).unwrap_or(usize::MAX);
        let slot = TemplateSlot::at(t, config.step);
        // gOA budget computation at this instant (heterogeneous or even).
        // While the fault plan marks the gOA unreachable no recomputation
        // happens: every server keeps enforcing its last-received budget —
        // the paper's stale-budget degraded mode (§III-Q5).
        let goa_down = faults.goa_unreachable(t);
        if goa_down != goa_was_down {
            goa_was_down = goa_down;
            if goa_down {
                degraded_decision = telemetry.next_id();
                tm_event!(telemetry, t, Component::Fault, Severity::Warn, "degraded_enter",
                    "rack" => rack.index,
                    "policy" => policy.name(),
                    "kind" => "goa_outage",
                    "decision_id" => degraded_decision,
                    "cause_id" => sim_decision);
            } else {
                tm_event!(telemetry, t, Component::Fault, Severity::Info, "degraded_exit",
                    "rack" => rack.index,
                    "policy" => policy.name(),
                    "stale_us" => epochs.staleness(t).unwrap_or(SimDuration::ZERO),
                    "cause_id" => degraded_decision);
                degraded_decision = 0;
            }
        }
        if goa_down {
            outcome.stale_budget_steps += 1;
        } else {
            match &mut tables {
                // Memoized path: the first visit to a weekly slot computes
                // the budget row from the prediction tables (identical
                // floats to the direct path); later weeks replay it.
                Some(tb) => {
                    let w = tb.slot_of_step(outcome.steps);
                    if tb.budgets_ready(w) {
                        buf.budgets.clear();
                        buf.budgets.extend_from_slice(tb.budgets_row(w));
                    } else {
                        buf.demands.clear();
                        buf.demands
                            .extend(tb.regular_row(w).iter().zip(tb.demand_row(w)).map(
                                |(&r, &d)| DemandProfile {
                                    regular: Watts::new(r.max(0.0)),
                                    overclock_demand: Watts::new(d.max(0.0)),
                                },
                            ));
                        goa.budgets_for_into(&buf.demands, &mut buf.budgets);
                        tb.store_budgets(w, &buf.budgets);
                    }
                }
                None => {
                    buf.demands.clear();
                    buf.demands
                        .extend(trained.servers.iter().map(|s| DemandProfile {
                            regular: Watts::new(s.template.predict_at(slot).max(0.0)),
                            overclock_demand: Watts::new(
                                s.demand_template.predict_at(slot).max(0.0),
                            ),
                        }));
                    goa.budgets_for_into(&buf.demands, &mut buf.budgets);
                }
            }
            epochs.mark_refresh(t);
            for (i, ((budget, pending), b)) in cols
                .budget
                .iter_mut()
                .zip(cols.pending_budget.iter_mut())
                .zip(buf.budgets.iter())
                .enumerate()
            {
                let entity = FaultPlan::entity_id(rack.index, i);
                if faults.drops_budget_update(t, entity) {
                    // Message lost: the server stays on its stale budget.
                    dropped_updates += 1;
                    continue;
                }
                let delay = faults.budget_update_delay(t, entity);
                if delay.is_zero() {
                    *budget = *b;
                    *pending = None;
                } else {
                    delayed_updates += 1;
                    *pending = Some((t + delay, *b));
                }
            }
        }
        // Injected sOA restarts: volatile state is lost and the server
        // re-joins conservatively — no budget (admission denies until the
        // next refresh), no exploration state.
        for (i, ((((budget, pending), explore), b_steps), b_rem)) in cols
            .budget
            .iter_mut()
            .zip(cols.pending_budget.iter_mut())
            .zip(cols.explore_extra.iter_mut())
            .zip(cols.backoff_steps.iter_mut())
            .zip(cols.backoff_remaining.iter_mut())
            .enumerate()
        {
            let entity = FaultPlan::entity_id(rack.index, i);
            if faults.soa_restarts(t, entity) {
                *budget = Watts::ZERO;
                *pending = None;
                *explore = Watts::ZERO;
                *b_steps = 0;
                *b_rem = 0;
                outcome.restarts += 1;
                tm_event!(telemetry, t, Component::Fault, Severity::Warn, "fault_injected",
                    "rack" => rack.index,
                    "server" => i,
                    "kind" => "soa_restart",
                    "decision_id" => telemetry.next_id(),
                    "cause_id" => sim_decision);
            }
        }

        // --- Admission per server. ---
        let admission_span = probe.span("rack/admission");
        // Batched column fills replace the reference engine's per-server
        // `value_at`/`predict` calls; values and fold order are identical.
        let base_total = fill_base_power(&views, idx, &mut buf.base_w);
        if decentral_check {
            match &tables {
                Some(tb) => {
                    // Memoized copy of exactly what fill_predictions would
                    // compute at this slot (raw predict_at, no clamping).
                    buf.predicted.clear();
                    buf.predicted
                        .extend_from_slice(tb.regular_row(tb.slot_of_step(outcome.steps)));
                }
                None => fill_predictions(&trained.servers, slot, &mut buf.predicted),
            }
        } else {
            // Placeholder column so the admission zip below stays in
            // lockstep; never read on this policy's admit path.
            buf.predicted.clear();
            buf.predicted.resize(n, 0.0);
        }
        // The central oracle's running rack total; decentralized policies
        // never read it, so the reference engine's unconditional pre-sum is
        // skipped for them (rule 3 of the module contract).
        let mut central_total = if central { base_total } else { Watts::ZERO };
        buf.extras.clear();
        buf.extras.resize(n, Watts::ZERO);
        buf.wanted.clear();
        buf.wanted.resize(n, false);
        buf.granted.clear();
        buf.granted.resize(n, false);
        for (
            i,
            ((((((((view, want), grant), extra_slot), oc_rem), budget), explore), pred), bin),
        ) in views
            .iter()
            .zip(buf.wanted.iter_mut())
            .zip(buf.granted.iter_mut())
            .zip(buf.extras.iter_mut())
            .zip(cols.oc_remaining.iter_mut())
            .zip(cols.budget.iter())
            .zip(cols.explore_extra.iter())
            .zip(buf.predicted.iter())
            .zip(bin_ids.iter())
            .enumerate()
        {
            let demand_cores = view.oc_demand_cores.get(idx).copied().unwrap_or(0.0);
            if demand_cores <= 0.0 {
                continue;
            }
            // Binned silicon: a bin-denied part never issues overclock
            // requests (its sOA knows the admission rule from its own risk
            // score); other parts request their risk-admitted level.
            if *bin == BIN_DENIED {
                continue;
            }
            // WI telemetry gap (fault injection): the sOA never sees this
            // window's demand, so no request is even issued.
            if faults.telemetry_gap(t, FaultPlan::entity_id(rack.index, i)) {
                telemetry_gaps += 1;
                continue;
            }
            *want = true;
            outcome.requests += 1;
            let util = view.utilization.get(idx).copied().unwrap_or(0.5);
            let cores = (demand_cores as usize).min(model.cores());
            let Some(delta) = bin_delta.get(*bin as usize) else {
                continue;
            };
            let extra = delta.at(util.clamp(0.0, 1.0), cores);
            // Lifetime check (all policies that check anything).
            if admission_checked && *oc_rem < config.step {
                continue;
            }
            let admit = if !admission_checked {
                true
            } else if central {
                if goa_down {
                    // The central controller is the unreachable component:
                    // fail-open grants on stale permission, fail-stop denies.
                    config.central_fail_open
                } else {
                    // Oracle: actual rack draw including extras granted so
                    // far.
                    central_total + extra <= rack.limit
                }
            } else {
                // Decentralized check against the locally-held budget; the
                // fault plan may perturb the prediction (noise is a factor
                // of exactly 1.0 when unconfigured).
                let entity = FaultPlan::entity_id(rack.index, i);
                let predicted = Watts::new((pred * faults.prediction_factor(t, entity)).max(0.0));
                predicted + extra <= *budget + *explore
            };
            if admit {
                *grant = true;
                *extra_slot = extra;
                if central {
                    central_total += extra;
                }
                outcome.granted += 1;
                if admission_checked {
                    *oc_rem = oc_rem.saturating_sub(config.step);
                }
            }
        }

        // --- Rack aggregation and enforcement. ---
        drop(admission_span);
        let aggregation_span = probe.span("rack/aggregation");
        let mut draw = base_total + buf.extras.iter().copied().sum::<Watts>();
        buf.perf.clear();
        buf.perf.resize(n, 0.0); // effective speedup of demand servers
        for (((p, want), grant), bin) in buf
            .perf
            .iter_mut()
            .zip(buf.wanted.iter())
            .zip(buf.granted.iter())
            .zip(bin_ids.iter())
        {
            if *want {
                // A granted server runs at its bin's risk-admitted level;
                // the ratio table holds each level's speedup over turbo.
                *p = if *grant {
                    bin_ratio.get(*bin as usize).copied().unwrap_or(1.0)
                } else {
                    1.0
                };
            }
        }
        // The monitor classifies the *pre-enforcement* draw: a step whose
        // uncontrolled demand hits the limit IS a capping event, even though
        // the capping mechanism then sheds load below it.
        let signal = monitor.observe(draw);
        // When the central baseline runs fail-open through an outage,
        // nothing enforces: stale permissions stand and the rack draw lands
        // wherever demand takes it — the budget-violation risk the
        // decentralized design avoids.
        let enforcement_disabled = goa_down && central && config.central_fail_open;
        let mut capped = false;
        if draw >= rack.limit && !enforcement_disabled {
            capped = true;
            // The capping transient hits the whole rack before the
            // controller untangles who to throttle: every server suffers a
            // frequency penalty proportional to the overshoot (this is the
            // paper's "Penalty on Power Cap" on non-overclocked VMs).
            // Linear scan over the already-read base-power column — the
            // reference engine re-walks every server's TimeSeries here.
            let dynamic: Watts = buf
                .base_w
                .iter()
                .map(|&w| (Watts::new(w) - model.idle()).clamp_non_negative())
                .sum();
            let over = draw - rack.limit;
            let frac = if dynamic.get() > 0.0 {
                (over.get() / dynamic.get()).min(1.0)
            } else {
                0.0
            };
            // Dynamic power ~ f·V² ⇒ frequency penalty is sublinear.
            let freq_penalty = (1.0 - (1.0 - frac).powf(0.55)).max(0.02);
            outcome.record_penalty(freq_penalty);
            for p in buf.perf.iter_mut() {
                *p *= 1.0 - freq_penalty;
            }
            // Enforcement then revokes overclock extras, largest first.
            // Stable sort on (index, extra) pairs: ties keep ascending
            // server order, exactly like the reference's index sort.
            buf.order.clear();
            buf.order.extend(
                buf.granted
                    .iter()
                    .zip(buf.extras.iter())
                    .enumerate()
                    .filter(|(_, (g, _))| **g)
                    .map(|(i, (_, e))| (i, *e)),
            );
            buf.order.sort_by(|a, b| b.1.get().total_cmp(&a.1.get()));
            for (i, extra) in buf.order.iter() {
                if draw < rack.limit {
                    break;
                }
                draw -= *extra;
                if let Some(e) = buf.extras.get_mut(*i) {
                    *e = Watts::ZERO;
                }
                if let Some(p) = buf.perf.get_mut(*i) {
                    *p = (1.0 - freq_penalty).min(*p);
                }
            }
            draw = draw.min(rack.limit * 0.98);
            tm_event!(telemetry, t, Component::Sim, Severity::Warn, "rack_capping",
                "rack" => rack.index,
                "policy" => policy.name(),
                "limit_w" => rack.limit.get(),
                "penalty" => freq_penalty,
                "decision_id" => telemetry.next_id(),
                "cause_id" => sim_decision);
        }
        if capped {
            outcome.capping_steps += 1;
        }
        // Post-enforcement safety audit: a draw still above the contracted
        // limit is a power-budget violation (the chaos suite pins this at
        // zero for every enforcing policy, under any fault plan).
        if draw > rack.limit {
            outcome.violation_steps += 1;
            tm_event!(telemetry, t, Component::Fault, Severity::Error, "budget_violation",
                "rack" => rack.index,
                "policy" => policy.name(),
                "draw_w" => draw.get(),
                "limit_w" => rack.limit.get(),
                "decision_id" => telemetry.next_id(),
                "cause_id" => sim_decision);
        }
        outcome.max_draw = outcome.max_draw.max(draw);
        // Pure observation (works with telemetry disabled): per-step rack
        // draw for health series. One worker feeds each rack, in time order.
        probe.gauge(t.as_micros(), "rack_draw_w", rack.index as u64, draw.get());
        telemetry.metrics(|m| {
            m.observe(
                "sim_rack_draw_w",
                &[("rack", rack.index.into())],
                draw.get(),
            );
        });

        // --- Exploration dynamics for the next step. ---
        let warning_now = signal == soc_power::rack::RackSignal::Warning;
        for (i, ((((explore, b_steps), b_rem), want), grant)) in cols
            .explore_extra
            .iter_mut()
            .zip(cols.backoff_steps.iter_mut())
            .zip(cols.backoff_remaining.iter_mut())
            .zip(buf.wanted.iter())
            .zip(buf.granted.iter())
            .enumerate()
        {
            if capped {
                *explore = Watts::ZERO;
                *b_steps = (*b_steps + 1).min(8);
                *b_rem = 1 << (*b_steps).min(6);
                continue;
            }
            if !policy.explores() {
                continue;
            }
            if warned_last_step && policy.heeds_warnings() && *explore > Watts::ZERO {
                *explore = (*explore - config.explore_step).clamp_non_negative();
                *b_steps = (*b_steps + 1).min(8);
                *b_rem = 1 << (*b_steps).min(6);
                continue;
            }
            if *b_rem > 0 {
                *b_rem -= 1;
                continue;
            }
            // Rejected for power this step? Explore a bigger budget.
            // Exploration is staggered across servers (each sOA's 30-second
            // explore window starts at a different phase) so a rack's
            // explorers do not all raise their budgets in the same step.
            let my_turn = (outcome.steps + i as u64).is_multiple_of(3);
            if *want && !*grant && my_turn && *explore < config.explore_cap {
                *explore = (*explore + config.explore_step).min(config.explore_cap);
            } else if *grant {
                *b_steps = 0;
            }
        }
        warned_last_step = warning_now;

        // --- Performance bookkeeping. ---
        for (p, want) in buf.perf.iter().zip(buf.wanted.iter()) {
            if *want {
                outcome.perf_sum += *p;
                outcome.perf_samples += 1;
            }
        }
        // Per-part wear accounting (heterogeneous fleets only): each server
        // granted this step ages at its hoisted part-scaled rate. Folded
        // left-to-right in server order, exactly like the reference engine.
        if let Some(s) = &silicon {
            for ((grant, view), rate) in buf.granted.iter().zip(views.iter()).zip(s.wear.iter()) {
                if *grant {
                    let util = view.utilization.get(idx).copied().unwrap_or(0.5);
                    outcome.wear_days += rate.at(util) * step_days;
                }
            }
        }
        drop(aggregation_span);
        outcome.steps += 1;
        t += config.step;
    }
    probe.add("sim_steps", outcome.steps);
    outcome.capping_events = monitor.capping_events();
    // Fault accounting rides in its own record so fault-free traces stay
    // byte-for-byte what they were before the faults layer existed.
    if !faults.is_noop() {
        tm_event!(telemetry, trace_end, Component::Fault, Severity::Info, "rack_fault_summary",
            "rack" => rack.index,
            "policy" => policy.name(),
            "outages" => faults.outages().len(),
            "stale_steps" => outcome.stale_budget_steps,
            "violation_steps" => outcome.violation_steps,
            "restarts" => outcome.restarts,
            "dropped_updates" => dropped_updates,
            "delayed_updates" => delayed_updates,
            "telemetry_gaps" => telemetry_gaps,
            "cause_id" => sim_decision);
    }
    tm_event!(telemetry, trace_end, Component::Sim, Severity::Info, "rack_sim_end",
        "rack" => rack.index,
        "policy" => policy.name(),
        "cause_id" => sim_decision,
        "steps" => outcome.steps,
        "requests" => outcome.requests,
        "granted" => outcome.granted,
        "capping_steps" => outcome.capping_steps,
        "capping_events" => outcome.capping_events);
    telemetry.metrics(|m| {
        let policy_label = [("policy", policy.name().into())];
        m.inc_counter_by("sim_requests", &policy_label, outcome.requests);
        m.inc_counter_by("sim_grants", &policy_label, outcome.granted);
        m.inc_counter_by("sim_capping_steps", &policy_label, outcome.capping_steps);
        if silicon.is_some() {
            m.inc_counter_by("sim_bin_denied", &policy_label, outcome.bin_denied);
            m.inc_counter_by("sim_down_binned", &policy_label, outcome.down_binned);
        }
    });
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::largescale::{simulate_rack_reference, train_rack};
    use soc_telemetry::json::event_to_json;
    use soc_traces::gen::TraceGenerator;

    fn engines_agree(config: &LargeScaleConfig, policy: PolicyKind) {
        let generator = TraceGenerator::new(config.seed);
        let fc = config.fleet_config();
        for r in 0..config.racks.min(2) {
            let rack = generator.generate_rack(&fc, r);
            let model = generator.model_for(rack.generation);
            let trained = train_rack(config, &rack, &model);
            let (tm_a, sink_a) = Telemetry::memory();
            let a = simulate_rack_columnar(
                config,
                policy,
                &rack,
                &model,
                &trained,
                &tm_a,
                &crate::probe::NoopProbe,
            );
            let (tm_b, sink_b) = Telemetry::memory();
            let b = simulate_rack_reference(config, policy, &rack, &model, &trained, &tm_b);
            assert_eq!(a, b, "outcome diverged: rack {r} policy {policy}");
            let render = |events: Vec<soc_telemetry::Event>| -> String {
                events.iter().map(event_to_json).collect()
            };
            assert_eq!(
                render(sink_a.events()),
                render(sink_b.events()),
                "event stream diverged: rack {r} policy {policy}"
            );
            assert_eq!(
                tm_a.metrics_snapshot().render(),
                tm_b.metrics_snapshot().render(),
                "metrics diverged: rack {r} policy {policy}"
            );
        }
    }

    #[test]
    fn columnar_matches_reference_all_policies() {
        let config = LargeScaleConfig::small_test();
        for policy in PolicyKind::ALL {
            engines_agree(&config, policy);
        }
    }

    #[test]
    fn columnar_matches_reference_under_faults() {
        let mut config = LargeScaleConfig::small_test();
        config.faults.goa_outages = 1;
        config.faults.goa_outage_len = SimDuration::from_hours(12);
        config.faults.budget_drop_prob = 0.05;
        config.faults.budget_delay_prob = 0.1;
        config.faults.budget_delay = SimDuration::from_minutes(30);
        config.faults.telemetry_gap_prob = 0.02;
        config.faults.soa_restart_prob = 0.01;
        config.faults.prediction_bias = 1.05;
        for policy in [PolicyKind::SmartOClock, PolicyKind::Central] {
            engines_agree(&config, policy);
        }
    }

    #[test]
    fn columnar_matches_reference_with_binned_silicon() {
        let mut config = LargeScaleConfig::small_test();
        config.binning.bins = 8;
        config.binning.risk_budget = 0.35;
        config.binning.wear_spread = 0.4;
        config.binning.seed = 7;
        for policy in PolicyKind::ALL {
            engines_agree(&config, policy);
        }
    }

    #[test]
    fn columnar_matches_reference_with_binning_and_faults() {
        let mut config = LargeScaleConfig::small_test();
        config.binning.bins = 4;
        config.binning.risk_budget = 0.5;
        config.binning.wear_spread = 0.2;
        config.binning.seed = 11;
        config.faults.goa_outages = 1;
        config.faults.goa_outage_len = SimDuration::from_hours(12);
        config.faults.budget_drop_prob = 0.05;
        config.faults.telemetry_gap_prob = 0.02;
        config.faults.soa_restart_prob = 0.01;
        for policy in [PolicyKind::SmartOClock, PolicyKind::Central] {
            engines_agree(&config, policy);
        }
    }

    #[test]
    fn columnar_matches_reference_on_fallback_prediction_path() {
        // The slot-memo kill switch forces the per-step prediction arms the
        // engine would use for a step that did not divide the week — with
        // and without heterogeneous silicon.
        let mut config = LargeScaleConfig::small_test();
        config.disable_slot_memo = true;
        engines_agree(&config, PolicyKind::SmartOClock);
        config.binning.bins = 8;
        config.binning.risk_budget = 0.3;
        config.binning.wear_spread = 0.4;
        config.binning.seed = 42;
        engines_agree(&config, PolicyKind::SmartOClock);
    }

    #[test]
    fn slot_tables_require_a_week_divisor_step() {
        // A non-divisor step cannot come out of the public pipeline
        // (template training asserts the step divides a day, and every
        // day-divisor divides the week), so the guard is pinned directly.
        let config = LargeScaleConfig::small_test();
        let generator = TraceGenerator::new(config.seed);
        let rack = generator.generate_rack(&config.fleet_config(), 0);
        let model = generator.model_for(rack.generation);
        let trained = train_rack(&config, &rack, &model);
        let start = SimTime::ZERO + SimDuration::WEEK;
        assert!(
            SlotTables::build(&trained.servers, start, SimDuration::from_hours(5)).is_none(),
            "5h does not divide the week; the memo must refuse to build"
        );
        assert!(
            SlotTables::build(&trained.servers, start, SimDuration::ZERO).is_none(),
            "a zero step must refuse to build, not divide by zero"
        );
        // The Some case must use the training step itself (predict_at
        // debug-asserts slot/template step agreement).
        let tables = SlotTables::build(&trained.servers, start, config.step)
            .expect("the 15-minute training step divides the week");
        let slots = (SimDuration::WEEK.as_micros() / config.step.as_micros()) as usize;
        assert_eq!(tables.slots, slots);
        assert_eq!(tables.n, rack.servers.len());
    }

    #[test]
    fn server_columns_api() {
        let mut cols = ServerColumns::new(3, SimDuration::from_hours(10));
        assert_eq!(cols.len(), 3);
        assert!(!cols.is_empty());
        assert_eq!(cols.oc_remaining(), &[SimDuration::from_hours(10); 3]);
        cols.refresh_allowances(SimDuration::from_hours(2));
        assert_eq!(cols.oc_remaining(), &[SimDuration::from_hours(2); 3]);
        assert_eq!(cols.budgets(), &[Watts::ZERO; 3]);
    }
}

//! Minimal hand-rolled JSON serialization for telemetry records.
//!
//! The workspace deliberately has no JSON crate; events carry a small closed
//! set of value types, so emitting them by hand keeps `soc-telemetry` free of
//! external dependencies while still producing strictly valid JSON.

use crate::event::{Event, FieldValue};
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (including the quotes).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON representation of `v`. Non-finite floats become `null`
/// (JSON has no NaN/Infinity).
pub fn push_json_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => push_json_string(out, s),
    }
}

/// Render one event as a single JSON object (one JSONL line, without the
/// trailing newline).
pub fn event_to_json(event: &Event) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"t_us\":{},\"component\":\"{}\",\"severity\":\"{}\",\"name\":",
        event.time.as_micros(),
        event.component.as_str(),
        event.severity.as_str(),
    );
    push_json_string(&mut out, event.name);
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, k);
        out.push(':');
        push_json_value(&mut out, v);
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Component, Severity};
    use simcore::time::SimTime;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{01}e");
        assert_eq!(out, r#""a\"b\\c\nd\u0001e""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_json_value(&mut out, &FieldValue::F64(f64::NAN));
        assert_eq!(out, "null");
        out.clear();
        push_json_value(&mut out, &FieldValue::F64(2.5));
        assert_eq!(out, "2.5");
    }

    #[test]
    fn event_renders_as_one_json_object() {
        let e = Event::new(
            SimTime::from_micros(42),
            Component::Soa,
            Severity::Warn,
            "oc_deny",
        )
        .field("server", 7usize)
        .field("reason", "power_budget")
        .field("ok", false);
        assert_eq!(
            event_to_json(&e),
            r#"{"t_us":42,"component":"soa","severity":"warn","name":"oc_deny","fields":{"server":7,"reason":"power_budget","ok":false}}"#
        );
    }
}

//! # soc-telemetry — sim-time-aware tracing and metrics for SmartOClock
//!
//! Observability layer for the agent stack. Three pieces:
//!
//! * **Events** ([`Event`]) — structured records stamped with [`SimTime`]
//!   (never wall-clock), a [`Component`] id, a [`Severity`], and typed
//!   key/value fields. Emitted through a cheap cloneable [`Telemetry`] handle.
//! * **Metrics** ([`MetricsRegistry`]) — counters, gauges, and histograms
//!   keyed by static names plus label pairs like `("rack", 3)`. Histograms
//!   reuse [`simcore::hist::Histogram`].
//! * **Sinks** ([`Sink`]) — pluggable event destinations: [`NullSink`]
//!   (discard), [`MemorySink`] (tests), [`JsonlSink`] (`--trace-out` files).
//!
//! A disabled handle ([`Telemetry::disabled`], also `Default`) is a `None`
//! internally: every emission site first checks [`Telemetry::is_enabled`], so
//! the disabled path costs one branch and never allocates. This is what lets
//! the agent crates carry instrumentation unconditionally.
//!
//! ```
//! use soc_telemetry::{Component, Event, Severity, Telemetry};
//! use simcore::time::SimTime;
//!
//! let (tm, sink) = Telemetry::memory();
//! tm.emit(
//!     Event::new(SimTime::from_secs(3), Component::Soa, Severity::Info, "oc_grant")
//!         .field("server", 4usize),
//! );
//! tm.metrics(|m| m.inc_counter("oc_grants", &[("rack", 0usize.into())]));
//! assert_eq!(sink.named("oc_grant").len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{Component, Event, FieldValue, Severity};
pub use metrics::{LabelValue, MetricKey, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};

use simcore::time::SimTime;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    sink: Box<dyn Sink>,
    metrics: MetricsRegistry,
    /// Next causal decision id. Starts at 1 so that 0 can mean "no id"
    /// everywhere an id is threaded through the control plane.
    ids: AtomicU64,
}

/// Cheap cloneable handle to a telemetry pipeline.
///
/// Cloning shares the underlying sink and metrics registry. The default
/// handle is disabled: emissions are dropped after a single branch.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle: every emission is a no-op.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Enabled handle writing events to `sink`.
    pub fn with_sink(sink: impl Sink + 'static) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                metrics: MetricsRegistry::new(),
                ids: AtomicU64::new(1),
            })),
        }
    }

    /// Enabled handle backed by an in-memory sink; returns the sink too so
    /// tests can assert on captured events.
    pub fn memory() -> (Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let tm = Telemetry::with_sink(SharedSink(sink.clone()));
        (tm, sink)
    }

    /// Enabled handle writing JSONL to the file at `path` (truncated).
    pub fn jsonl(path: impl AsRef<Path>) -> io::Result<Telemetry> {
        Ok(Telemetry::with_sink(JsonlSink::create(path)?))
    }

    /// Enabled handle buffering into a private [`MemorySink`] and registry,
    /// with the id counter starting at `id_base` (clamped up to 1, since 0
    /// is the reserved no-id value).
    ///
    /// This is the shard-local handle of the parallel execution engine: each
    /// worker simulates into its own buffer, and the caller replays the
    /// buffers into the real handle with [`Telemetry::absorb`] in canonical
    /// shard order after the join. Giving every shard a disjoint,
    /// deterministic id range (`id_base` derived from the shard index, not
    /// from a shared counter) is what keeps `decision_id`/`cause_id` fields
    /// byte-identical across thread counts.
    pub fn buffered(id_base: u64) -> (Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let tm = Telemetry {
            inner: Some(Arc::new(Inner {
                sink: Box::new(SharedSink(sink.clone())),
                metrics: MetricsRegistry::new(),
                ids: AtomicU64::new(id_base.max(1)),
            })),
        };
        (tm, sink)
    }

    /// Replay a shard's buffered output into this handle: events are
    /// re-emitted in their buffered order, then `metrics` is merged into the
    /// registry (counters add, gauges overwrite, histograms merge).
    ///
    /// Callers must absorb shards in canonical (input) order — the event
    /// stream and any overlapping gauges take their order from the calls.
    /// No-op when disabled.
    pub fn absorb(&self, events: &[Event], metrics: &MetricsSnapshot) {
        if let Some(inner) = &self.inner {
            for event in events {
                inner.sink.record(event);
            }
            inner.metrics.merge_snapshot(metrics);
        }
    }

    /// `true` when events actually go somewhere. Emission sites check this
    /// before building field vectors so the disabled path never allocates.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Send one event to the sink. No-op when disabled.
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&event);
        }
    }

    /// Run `f` against the metrics registry. No-op (and `None`) when
    /// disabled, so hot paths can update metrics without a guard.
    #[inline]
    pub fn metrics<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&inner.metrics))
    }

    /// Deterministic snapshot of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics(|m| m.snapshot()).unwrap_or_default()
    }

    /// Allocate the next causal decision id.
    ///
    /// Ids start at 1 and increase monotonically per handle; `0` is reserved
    /// to mean "no id" in `decision_id` / `cause_id` event fields, and is
    /// what a disabled handle returns. Single-threaded runs therefore get
    /// deterministic ids, which keeps traces byte-identical per seed.
    #[inline]
    pub fn next_id(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.ids.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Flush the sink (e.g. the JSONL buffer). No-op when disabled.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    /// Emit the current metrics registry contents into the event stream as
    /// `metric` records under [`Component::Metrics`], stamped with `now`.
    ///
    /// The dump is explicitly sorted by (metric name, label pairs), so the
    /// metric section of a JSONL trace is byte-stable across runs and safe
    /// to diff. Counters and gauges carry a `value` field; histograms carry
    /// `count`/`mean`/`p50`/`p99`. No-op when disabled.
    pub fn emit_metrics_snapshot(&self, now: SimTime) {
        if !self.is_enabled() {
            return;
        }
        let mut snap = self.metrics_snapshot();
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, v) in &snap.counters {
            crate::tm_event!(self, now, Component::Metrics, Severity::Debug, "metric",
                "kind" => "counter", "key" => k.render(), "value" => *v);
        }
        for (k, v) in &snap.gauges {
            crate::tm_event!(self, now, Component::Metrics, Severity::Debug, "metric",
                "kind" => "gauge", "key" => k.render(), "value" => *v);
        }
        for (k, h) in &snap.histograms {
            if h.is_empty() {
                crate::tm_event!(self, now, Component::Metrics, Severity::Debug, "metric",
                    "kind" => "hist", "key" => k.render(), "count" => 0u64);
            } else {
                crate::tm_event!(self, now, Component::Metrics, Severity::Debug, "metric",
                    "kind" => "hist", "key" => k.render(), "count" => h.count(),
                    "mean" => h.mean(), "p50" => h.quantile(0.50),
                    "p99" => h.quantile(0.99));
            }
        }
    }

    /// Open a sim-time span. The span emits a single event carrying
    /// `dur_us` when [`Span::end`] is called with the closing sim time.
    pub fn span(&self, start: SimTime, component: Component, name: &'static str) -> Span<'_> {
        Span {
            tm: self,
            start,
            component,
            name,
            fields: Vec::new(),
        }
    }
}

/// Adapter so an `Arc<impl Sink>` can be installed as a sink.
struct SharedSink<S: Sink>(Arc<S>);

impl<S: Sink> Sink for SharedSink<S> {
    fn record(&self, event: &Event) {
        self.0.record(event);
    }
    fn flush(&self) {
        self.0.flush();
    }
}

/// An in-flight sim-time span.
///
/// Simulated time does not advance implicitly, so spans take explicit start
/// and end instants rather than sampling a clock. Ending emits one
/// `Severity::Debug` event with the accumulated fields plus `dur_us`.
#[must_use = "a span only emits when `end` is called"]
pub struct Span<'a> {
    tm: &'a Telemetry,
    start: SimTime,
    component: Component,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span<'_> {
    /// Attach a field to the span's closing event.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if self.tm.is_enabled() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Close the span at sim time `end`, emitting the event.
    pub fn end(self, end: SimTime) {
        if !self.tm.is_enabled() {
            return;
        }
        let mut event = Event {
            time: self.start,
            component: self.component,
            severity: Severity::Debug,
            name: self.name,
            fields: self.fields,
        };
        event.fields.push((
            "dur_us",
            FieldValue::U64(end.saturating_since(self.start).as_micros()),
        ));
        self.tm.emit(event);
    }
}

/// Per-thread event buffer for the rack runtime's agent threads.
///
/// Worker threads push into a local `Vec` (no lock) and flush in batches to
/// the shared sink, keeping sink lock contention off the per-tick path.
pub struct LocalSpool {
    tm: Telemetry,
    buf: Vec<Event>,
}

impl LocalSpool {
    /// Buffer for the given handle.
    pub fn new(tm: Telemetry) -> LocalSpool {
        LocalSpool {
            tm,
            buf: Vec::new(),
        }
    }

    /// `true` when the underlying handle is enabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.tm.is_enabled()
    }

    /// Buffer one event locally. No-op when disabled.
    #[inline]
    pub fn push(&mut self, event: Event) {
        if self.tm.is_enabled() {
            self.buf.push(event);
        }
    }

    /// Drain the local buffer into the sink.
    pub fn flush(&mut self) {
        for event in self.buf.drain(..) {
            self.tm.emit(event);
        }
    }
}

impl Drop for LocalSpool {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Emit a structured event through a [`Telemetry`] handle.
///
/// Expands to a guarded emission: when the handle is disabled nothing is
/// evaluated beyond the `is_enabled` branch (field expressions included).
///
/// ```
/// use soc_telemetry::{tm_event, Component, Severity, Telemetry};
/// use simcore::time::SimTime;
///
/// let (tm, sink) = Telemetry::memory();
/// tm_event!(tm, SimTime::ZERO, Component::Goa, Severity::Info, "budget_split",
///     "racks" => 4usize, "total_w" => 1200.0);
/// assert_eq!(sink.named("budget_split").len(), 1);
/// ```
#[macro_export]
macro_rules! tm_event {
    ($tm:expr, $time:expr, $component:expr, $severity:expr, $name:expr
        $(, $key:literal => $value:expr)* $(,)?) => {
        if $tm.is_enabled() {
            $tm.emit($crate::Event {
                time: $time,
                component: $component,
                severity: $severity,
                name: $name,
                fields: vec![$(($key, $crate::FieldValue::from($value))),*],
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    #[test]
    fn disabled_handle_is_inert() {
        let tm = Telemetry::disabled();
        assert!(!tm.is_enabled());
        tm.emit(Event::new(
            SimTime::ZERO,
            Component::Wi,
            Severity::Info,
            "noop",
        ));
        assert!(tm.metrics(|m| m.counter("x", &[])).is_none());
        assert!(tm.metrics_snapshot().counters.is_empty());
        tm.flush();
    }

    #[test]
    fn clones_share_sink_and_metrics() {
        let (tm, sink) = Telemetry::memory();
        let tm2 = tm.clone();
        tm2.emit(Event::new(
            SimTime::ZERO,
            Component::Soa,
            Severity::Info,
            "a",
        ));
        tm.metrics(|m| m.inc_counter("c", &[]));
        tm2.metrics(|m| m.inc_counter("c", &[]));
        assert_eq!(sink.len(), 1);
        assert_eq!(tm.metrics(|m| m.counter("c", &[])), Some(2));
    }

    #[test]
    fn span_emits_duration() {
        let (tm, sink) = Telemetry::memory();
        let span = tm
            .span(SimTime::from_secs(10), Component::Harness, "tick")
            .field("step", 7u64);
        span.end(SimTime::from_secs(10) + SimDuration::from_millis(250));
        let events = sink.named("tick");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("dur_us"), Some(&FieldValue::U64(250_000)));
        assert_eq!(events[0].get("step"), Some(&FieldValue::U64(7)));
    }

    #[test]
    fn spool_batches_until_flush() {
        let (tm, sink) = Telemetry::memory();
        let mut spool = LocalSpool::new(tm);
        spool.push(Event::new(
            SimTime::ZERO,
            Component::Rack,
            Severity::Debug,
            "e1",
        ));
        spool.push(Event::new(
            SimTime::ZERO,
            Component::Rack,
            Severity::Debug,
            "e2",
        ));
        assert_eq!(sink.len(), 0);
        spool.flush();
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn spool_flushes_on_drop() {
        let (tm, sink) = Telemetry::memory();
        {
            let mut spool = LocalSpool::new(tm);
            spool.push(Event::new(
                SimTime::ZERO,
                Component::Rack,
                Severity::Debug,
                "e",
            ));
        }
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn macro_skips_field_evaluation_when_disabled() {
        let tm = Telemetry::disabled();
        let mut evaluated = false;
        tm_event!(tm, SimTime::ZERO, Component::Sim, Severity::Info, "x",
            "v" => { evaluated = true; 1u64 });
        assert!(!evaluated);

        let (tm, sink) = Telemetry::memory();
        tm_event!(tm, SimTime::ZERO, Component::Sim, Severity::Info, "x",
            "v" => { evaluated = true; 1u64 });
        assert!(evaluated);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn decision_ids_start_at_one_and_are_sequential() {
        let (tm, _sink) = Telemetry::memory();
        assert_eq!(tm.next_id(), 1);
        assert_eq!(tm.next_id(), 2);
        let clone = tm.clone();
        assert_eq!(clone.next_id(), 3, "clones share the id counter");
        assert_eq!(
            Telemetry::disabled().next_id(),
            0,
            "0 is the reserved no-id value"
        );
    }

    #[test]
    fn buffered_handle_uses_the_id_base() {
        let (tm, sink) = Telemetry::buffered(1 << 24);
        assert_eq!(tm.next_id(), 1 << 24);
        assert_eq!(tm.next_id(), (1 << 24) + 1);
        tm.emit(Event::new(
            SimTime::ZERO,
            Component::Sim,
            Severity::Info,
            "e",
        ));
        assert_eq!(sink.len(), 1);
        // Base 0 clamps to 1 so a buffered handle never emits the no-id value.
        let (tm, _sink) = Telemetry::buffered(0);
        assert_eq!(tm.next_id(), 1);
    }

    #[test]
    fn absorb_replays_events_and_merges_metrics_in_order() {
        let (outer, outer_sink) = Telemetry::memory();
        outer.metrics(|m| m.inc_counter("c", &[]));

        let shard = |base: u64, name: &'static str, gauge: f64| {
            let (tm, sink) = Telemetry::buffered(base);
            tm.emit(Event::new(
                SimTime::ZERO,
                Component::Sim,
                Severity::Info,
                name,
            ));
            tm.metrics(|m| {
                m.inc_counter("c", &[]);
                m.set_gauge("g", &[], gauge);
                m.observe("h", &[], gauge);
            });
            (sink.events(), tm.metrics_snapshot())
        };
        let (ev0, m0) = shard(100, "shard0", 1.0);
        let (ev1, m1) = shard(200, "shard1", 2.0);
        outer.absorb(&ev0, &m0);
        outer.absorb(&ev1, &m1);

        let names: Vec<&str> = outer_sink.events().iter().map(|e| e.name).collect();
        assert_eq!(names, ["shard0", "shard1"], "canonical shard order");
        assert_eq!(outer.metrics(|m| m.counter("c", &[])), Some(3));
        // Gauges: last absorbed shard wins, same as a serial run.
        assert_eq!(outer.metrics(|m| m.gauge("g", &[])).flatten(), Some(2.0));
        let h = outer.metrics(|m| m.histogram("h", &[])).flatten().unwrap();
        assert_eq!(h.count(), 2);

        // Absorbing into a disabled handle is a no-op.
        Telemetry::disabled().absorb(&ev0, &m0);
    }

    #[test]
    fn metrics_snapshot_dump_is_sorted_and_stable() {
        let (tm, sink) = Telemetry::memory();
        tm.metrics(|m| {
            m.inc_counter("zz", &[]);
            m.inc_counter("aa", &[("rack", 1usize.into())]);
            m.inc_counter("aa", &[("rack", 0usize.into())]);
            m.set_gauge("g", &[], 2.5);
            m.observe("h", &[], 10.0);
        });
        tm.emit_metrics_snapshot(SimTime::from_secs(9));
        let dump: Vec<String> = sink
            .named("metric")
            .iter()
            .map(|e| format!("{} {}", e.get("kind").unwrap(), e.get("key").unwrap()))
            .collect();
        assert_eq!(
            dump,
            vec![
                "counter aa{rack=0}",
                "counter aa{rack=1}",
                "counter zz",
                "gauge g",
                "hist h",
            ]
        );
        // A second dump appends the identical section again.
        tm.emit_metrics_snapshot(SimTime::from_secs(9));
        let again = sink.named("metric");
        assert_eq!(again.len(), 10);
        assert_eq!(&again[..5], &again[5..]);
    }

    #[test]
    fn jsonl_roundtrip_through_handle() {
        let path =
            std::env::temp_dir().join(format!("soc-telemetry-handle-{}.jsonl", std::process::id()));
        {
            let tm = Telemetry::jsonl(&path).unwrap();
            tm_event!(tm, SimTime::from_secs(1), Component::Goa, Severity::Info, "budget_split",
                "racks" => 2usize);
            tm.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\":\"budget_split\""));
        std::fs::remove_file(&path).ok();
    }
}

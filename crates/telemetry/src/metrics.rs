//! Metrics registry: counters, gauges, and histograms keyed by a static
//! metric name plus label pairs such as `("rack", 3)`.
//!
//! Storage is `BTreeMap`-backed so snapshots iterate in a deterministic
//! order — important because figure binaries print snapshots and runs must be
//! reproducible byte-for-byte. Histograms reuse [`simcore::hist::Histogram`]
//! (log-bucketed, mergeable) rather than introducing a second histogram type.

use simcore::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// A label value: small integers for indices (rack 3, server 17), static
/// strings for enumerations (policy names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelValue {
    U64(u64),
    Str(&'static str),
}

impl From<u64> for LabelValue {
    fn from(v: u64) -> Self {
        LabelValue::U64(v)
    }
}

impl From<usize> for LabelValue {
    fn from(v: usize) -> Self {
        LabelValue::U64(v as u64)
    }
}

impl From<u32> for LabelValue {
    fn from(v: u32) -> Self {
        LabelValue::U64(v as u64)
    }
}

impl From<&'static str> for LabelValue {
    fn from(v: &'static str) -> Self {
        LabelValue::Str(v)
    }
}

impl fmt::Display for LabelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelValue::U64(v) => write!(f, "{v}"),
            LabelValue::Str(s) => f.write_str(s),
        }
    }
}

/// Identity of one time series: metric name plus ordered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: &'static str,
    pub labels: Vec<(&'static str, LabelValue)>,
}

impl MetricKey {
    /// Render as `name` or `name{rack=3,server=17}`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_owned();
        }
        let mut out = String::from(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Convert caller-side label slices into a key.
fn key(name: &'static str, labels: &[(&'static str, LabelValue)]) -> MetricKey {
    MetricKey {
        name,
        labels: labels.to_vec(),
    }
}

/// Relative precision for registry histograms (~1 % quantile error).
const HIST_PRECISION: f64 = 0.01;

/// Thread-safe registry of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, u64>>,
    gauges: Mutex<BTreeMap<MetricKey, f64>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (creating it at zero).
    pub fn inc_counter_by(
        &self,
        name: &'static str,
        labels: &[(&'static str, LabelValue)],
        delta: u64,
    ) {
        let mut map = self.counters.lock().expect("counter map poisoned");
        *map.entry(key(name, labels)).or_insert(0) += delta;
    }

    /// Increment a counter by one.
    pub fn inc_counter(&self, name: &'static str, labels: &[(&'static str, LabelValue)]) {
        self.inc_counter_by(name, labels, 1);
    }

    /// Set a gauge to `value`.
    pub fn set_gauge(&self, name: &'static str, labels: &[(&'static str, LabelValue)], value: f64) {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        map.insert(key(name, labels), value);
    }

    /// Record one non-negative observation into a histogram.
    pub fn observe(&self, name: &'static str, labels: &[(&'static str, LabelValue)], value: f64) {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        map.entry(key(name, labels))
            .or_insert_with(|| Histogram::new(HIST_PRECISION))
            .record(value);
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, LabelValue)]) -> u64 {
        let map = self.counters.lock().expect("counter map poisoned");
        map.get(&key(name, labels)).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, LabelValue)]) -> Option<f64> {
        let map = self.gauges.lock().expect("gauge map poisoned");
        map.get(&key(name, labels)).copied()
    }

    /// Clone of a histogram, if any observations were recorded.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, LabelValue)],
    ) -> Option<Histogram> {
        let map = self.histograms.lock().expect("histogram map poisoned");
        map.get(&key(name, labels)).cloned()
    }

    /// Merge a snapshot taken from another registry (a shard's buffered
    /// registry) into this one: counters add, gauges overwrite (last write
    /// wins — merge shards in canonical order), histograms merge
    /// bucket-wise. All registry histograms share one precision, so the
    /// histogram merge cannot panic.
    pub fn merge_snapshot(&self, snap: &MetricsSnapshot) {
        {
            let mut map = self.counters.lock().expect("counter map poisoned");
            for (k, v) in &snap.counters {
                *map.entry(k.clone()).or_insert(0) += v;
            }
        }
        {
            let mut map = self.gauges.lock().expect("gauge map poisoned");
            for (k, v) in &snap.gauges {
                map.insert(k.clone(), *v);
            }
        }
        {
            let mut map = self.histograms.lock().expect("histogram map poisoned");
            for (k, h) in &snap.histograms {
                match map.get_mut(k) {
                    Some(existing) => existing.merge(h),
                    None => {
                        map.insert(k.clone(), h.clone());
                    }
                }
            }
        }
    }

    /// Deterministic snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], sorted by key.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(MetricKey, u64)>,
    pub gauges: Vec<(MetricKey, f64)>,
    pub histograms: Vec<(MetricKey, Histogram)>,
}

impl MetricsSnapshot {
    /// Render as stable plain text, one metric per line (`key value`).
    /// Histograms render count/mean/p50/p99.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            if h.is_empty() {
                out.push_str(&format!("hist {k} count=0\n"));
            } else {
                out.push_str(&format!(
                    "hist {k} count={} mean={:.4} p50={:.4} p99={:.4}\n",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.inc_counter("oc_grants", &[("rack", 3usize.into())]);
        m.inc_counter("oc_grants", &[("rack", 3usize.into())]);
        m.inc_counter("oc_grants", &[("rack", 4usize.into())]);
        assert_eq!(m.counter("oc_grants", &[("rack", 3usize.into())]), 2);
        assert_eq!(m.counter("oc_grants", &[("rack", 4usize.into())]), 1);
        assert_eq!(m.counter("oc_grants", &[]), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("rack_power_w", &[("rack", 0usize.into())], 100.0);
        m.set_gauge("rack_power_w", &[("rack", 0usize.into())], 120.5);
        assert_eq!(
            m.gauge("rack_power_w", &[("rack", 0usize.into())]),
            Some(120.5)
        );
        assert_eq!(m.gauge("rack_power_w", &[("rack", 9usize.into())]), None);
    }

    #[test]
    fn histograms_record_and_expose_quantiles() {
        let m = MetricsRegistry::new();
        for i in 1..=100 {
            m.observe("tick_us", &[], i as f64);
        }
        let h = m.histogram("tick_us", &[]).unwrap();
        assert_eq!(h.count(), 100);
        assert!((h.quantile(0.5) - 50.0).abs() < 3.0);
    }

    #[test]
    fn key_rendering() {
        let k = MetricKey {
            name: "oc_grants",
            labels: vec![("rack", 3usize.into()), ("policy", "smartoclock".into())],
        };
        assert_eq!(k.render(), "oc_grants{rack=3,policy=smartoclock}");
        let bare = MetricKey {
            name: "ticks",
            labels: vec![],
        };
        assert_eq!(bare.render(), "ticks");
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let m = MetricsRegistry::new();
        m.inc_counter("b", &[]);
        m.inc_counter("a", &[]);
        m.set_gauge("g", &[], 1.5);
        m.observe("h", &[], 2.0);
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].0.name, "a");
        assert_eq!(snap.counters[1].0.name, "b");
        let text = snap.render();
        assert!(text.contains("counter a 1"));
        assert!(text.contains("gauge g 1.5"));
        assert!(text.contains("hist h count=1"));
    }

    #[test]
    fn merge_snapshot_matches_direct_recording() {
        // Recording everything into one registry must equal recording into
        // two and merging the second's snapshot into the first.
        let direct = MetricsRegistry::new();
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for (i, m) in [(0u64, &a), (1, &b)] {
            for target in [&direct, m] {
                target.inc_counter_by("c", &[], i + 1);
                target.set_gauge("g", &[], i as f64);
                target.observe("h", &[("rack", i.into())], (i + 1) as f64 * 10.0);
            }
        }
        a.merge_snapshot(&b.snapshot());
        assert_eq!(a.snapshot().render(), direct.snapshot().render());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.inc_counter("spins", &[]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("spins", &[]), 4000);
    }
}

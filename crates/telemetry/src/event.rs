//! Structured telemetry records stamped with **simulated** time.
//!
//! Every record carries a [`SimTime`] taken from the simulation clock of the
//! emitting component — never wall-clock time — so traces from repeated runs
//! with the same seed are byte-identical and can be diffed.

use simcore::time::{SimDuration, SimTime};
use std::fmt;

/// Which part of the agent stack emitted a record.
///
/// Mirrors the SmartOClock architecture: workload-informed agents (`wi`),
/// per-server overclocking agents (`soa`), the global overclocking agent
/// (`goa`), the rack runtime/monitor (`rack`), the cluster harness
/// (`harness`), and the large-scale simulation loop (`sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Workload-informed agent (local or global).
    Wi,
    /// Server overclocking agent.
    Soa,
    /// Global overclocking agent (budget splitting).
    Goa,
    /// Rack runtime / rack power monitor.
    Rack,
    /// Cluster harness driving a full simulated rack.
    Harness,
    /// Large-scale (many-rack) simulation loop.
    Sim,
    /// End-of-run metrics registry dump (`metric` records).
    Metrics,
    /// Fault-injection layer (chaos schedules, degraded-mode transitions).
    Fault,
}

impl Component {
    /// Stable lowercase identifier used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Wi => "wi",
            Component::Soa => "soa",
            Component::Goa => "goa",
            Component::Rack => "rack",
            Component::Harness => "harness",
            Component::Sim => "sim",
            Component::Metrics => "metrics",
            Component::Fault => "fault",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Coarse severity of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume diagnostics (per-tick state).
    Debug,
    /// Normal control-plane decisions (grants, budget splits).
    Info,
    /// Recoverable anomalies (warning retreats, denials).
    Warn,
    /// Budget violations and forced interventions (capping, revokes).
    Error,
}

impl Severity {
    /// Stable lowercase identifier used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<SimTime> for FieldValue {
    fn from(v: SimTime) -> Self {
        FieldValue::U64(v.as_micros())
    }
}

impl From<SimDuration> for FieldValue {
    fn from(v: SimDuration) -> Self {
        FieldValue::U64(v.as_micros())
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time at which the event occurred.
    pub time: SimTime,
    /// Which part of the stack emitted it.
    pub component: Component,
    /// Coarse severity.
    pub severity: Severity,
    /// Event name, e.g. `"oc_grant"` or `"budget_split"`. Static so that
    /// hot-path emission never allocates for the name.
    pub name: &'static str,
    /// Ordered key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Build an event with no fields.
    pub fn new(
        time: SimTime,
        component: Component,
        severity: Severity,
        name: &'static str,
    ) -> Event {
        Event {
            time,
            component,
            severity,
            name,
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field value by key.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let e = Event::new(
            SimTime::from_secs(5),
            Component::Soa,
            Severity::Info,
            "oc_grant",
        )
        .field("server", 3usize)
        .field("reason", "cap");
        assert_eq!(e.get("server"), Some(&FieldValue::U64(3)));
        assert_eq!(e.get("reason"), Some(&FieldValue::Str("cap".into())));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn identifiers_are_stable() {
        assert_eq!(Component::Goa.as_str(), "goa");
        assert_eq!(Component::Fault.as_str(), "fault");
        assert_eq!(Severity::Error.as_str(), "error");
        assert_eq!(format!("{}", Component::Harness), "harness");
    }

    #[test]
    fn time_fields_store_micros() {
        assert_eq!(
            FieldValue::from(SimTime::from_secs(2)),
            FieldValue::U64(2_000_000)
        );
        assert_eq!(
            FieldValue::from(SimDuration::from_millis(3)),
            FieldValue::U64(3_000)
        );
    }
}

//! Pluggable event sinks.
//!
//! A [`Sink`] receives every emitted [`Event`]. Three implementations cover
//! the intended uses: [`NullSink`] (discard; the default when telemetry is
//! disabled), [`MemorySink`] (buffer in memory; used by tests to assert on
//! decisions), and [`JsonlSink`] (append one JSON object per line to a file;
//! used by the figure binaries via `--trace-out`).

use crate::event::Event;
use crate::json::event_to_json;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Destination for telemetry events. Implementations must be thread-safe:
/// the rack runtime emits from one thread per sOA.
pub trait Sink: Send + Sync {
    /// Record one event.
    fn record(&self, event: &Event);

    /// Flush any buffered output. The default is a no-op.
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Buffers events in memory for later inspection (tests, assertions).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Create an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copy out all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("memory sink poisoned").clear();
    }

    /// Events with the given name.
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Appends one JSON object per event to a file (JSON Lines).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event_to_json(event);
        line.push('\n');
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // Trace output is best-effort: a full disk must not abort the run.
        let _ = w.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = w.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Component, Severity};
    use simcore::time::SimTime;

    fn ev(name: &'static str) -> Event {
        Event::new(SimTime::ZERO, Component::Harness, Severity::Info, name)
    }

    #[test]
    fn memory_sink_collects_and_filters() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&ev("a"));
        sink.record(&ev("b"));
        sink.record(&ev("a"));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.named("a").len(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("soc-telemetry-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&ev("x").field("k", 1u64));
            sink.record(&ev("y").field("s", "v\"w"));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[1].contains(r#""s":"v\"w""#));
        std::fs::remove_file(&path).ok();
    }
}

//! # soc-predict — power and utilization prediction templates
//!
//! SmartOClock's admission control rests on predictable power draw: "the
//! Global and Server Overclocking Agents continuously monitor the server and
//! rack power consumption and use the data gathered during monitoring to
//! periodically (e.g., weekly) recompute the per-rack and per-server power
//! templates" (paper §IV-B).
//!
//! * [`template`] — the five template-construction strategies the paper
//!   compares in Fig. 15: `FlatMed`, `FlatMax`, `Weekly`, `DailyMed` (the one
//!   SmartOClock uses), and `DailyMax`. A [`template::PowerTemplate`]
//!   predicts a value for any future instant.
//! * [`eval`] — walk-forward accuracy evaluation: build the template on one
//!   week, score it on the next, exactly as deployed (§IV-B), producing the
//!   RMSE and mean-error distributions of Figs. 8 and 15.

#![forbid(unsafe_code)]

pub mod eval;
pub mod template;

pub use eval::{walk_forward, WalkForwardReport};
pub use template::{PowerTemplate, TemplateKind};

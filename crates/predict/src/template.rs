//! Power-template construction and prediction.
//!
//! "SmartOClock creates a power template using *per-day aggregation* of power
//! draws across all weekdays in the prior week. The template represents a
//! single day and the same template is used for predictions for all days in
//! the following week. For example, the template's value at 9AM is the median
//! of rack's power consumption at 9AM across all five weekdays. A separate
//! template is used for weekends." (paper §IV-B)
//!
//! Fig. 15 compares five strategies; all are implemented here.

use serde::{Deserialize, Serialize};
use simcore::series::TimeSeries;
use simcore::stats::percentile;
use simcore::time::{SimDuration, SimTime};

/// Template-construction strategy (Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Constant prediction: median of all prior samples. Opportunistic —
    /// underpredicts peaks.
    FlatMed,
    /// Constant prediction: maximum of all prior samples. Conservative —
    /// overpredicts almost always.
    FlatMax,
    /// Replay the previous week's series by time-of-week. Sensitive to
    /// outlier days (holidays).
    Weekly,
    /// Per-day aggregation, median across the prior week's weekdays (plus a
    /// separate weekend profile). **SmartOClock's choice.**
    DailyMed,
    /// Per-day aggregation, maximum across days.
    DailyMax,
}

impl TemplateKind {
    /// All strategies, in the order Fig. 15 lists them.
    pub const ALL: [TemplateKind; 5] = [
        TemplateKind::FlatMed,
        TemplateKind::FlatMax,
        TemplateKind::Weekly,
        TemplateKind::DailyMed,
        TemplateKind::DailyMax,
    ];

    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            TemplateKind::FlatMed => "FlatMed",
            TemplateKind::FlatMax => "FlatMax",
            TemplateKind::Weekly => "Weekly",
            TemplateKind::DailyMed => "DailyMed",
            TemplateKind::DailyMax => "DailyMax",
        }
    }
}

impl std::fmt::Display for TemplateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A built template that predicts a value for any instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTemplate {
    kind: TemplateKind,
    step: SimDuration,
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Repr {
    Flat(f64),
    /// One value per step-slot of the week.
    Week(Vec<f64>),
    /// One value per step-slot of the day, for weekdays and weekends.
    Daily {
        weekday: Vec<f64>,
        weekend: Vec<f64>,
    },
}

/// A precomputed lookup position for one instant, shared across every
/// template with the same sampling step (see [`PowerTemplate::predict_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateSlot {
    step: SimDuration,
    day_slot: usize,
    week_slot: usize,
    weekend: bool,
}

impl TemplateSlot {
    /// Decompose instant `t` for templates sampled at `step`.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    pub fn at(t: SimTime, step: SimDuration) -> TemplateSlot {
        assert!(!step.is_zero(), "template step must be positive");
        TemplateSlot {
            step,
            day_slot: (t.time_of_day().as_micros() / step.as_micros()) as usize,
            week_slot: (t.time_of_week().as_micros() / step.as_micros()) as usize,
            weekend: t.weekday().is_weekend(),
        }
    }
}

impl PowerTemplate {
    /// Build a template of the given kind from training history.
    ///
    /// # Panics
    /// Panics if `history` is empty, or (for `Weekly`/`Daily*`) shorter than
    /// one full week, or if the step does not divide a day evenly.
    pub fn build(history: &TimeSeries, kind: TemplateKind) -> PowerTemplate {
        assert!(
            !history.is_empty(),
            "cannot build a template from an empty history"
        );
        let step = history.step();
        assert!(
            SimDuration::DAY
                .as_micros()
                .is_multiple_of(step.as_micros()),
            "step must divide a day evenly"
        );
        let repr = match kind {
            TemplateKind::FlatMed => Repr::Flat(percentile(history.values(), 50.0)),
            TemplateKind::FlatMax => Repr::Flat(history.max()),
            TemplateKind::Weekly => {
                let slots_per_week = (SimDuration::WEEK.as_micros() / step.as_micros()) as usize;
                assert!(
                    history.len() >= slots_per_week,
                    "Weekly template needs at least one full week of history"
                );
                // Use the most recent full week, aligned by time-of-week.
                let mut week = vec![0.0; slots_per_week];
                let from = history.len() - slots_per_week;
                for i in 0..slots_per_week {
                    let idx = from + i;
                    let t = history.time_at_index(idx);
                    let slot =
                        (t.time_of_week().as_micros() / step.as_micros()) as usize % slots_per_week;
                    week[slot] = history.values()[idx];
                }
                Repr::Week(week)
            }
            TemplateKind::DailyMed | TemplateKind::DailyMax => {
                let slots_per_week = (SimDuration::WEEK.as_micros() / step.as_micros()) as usize;
                assert!(
                    history.len() >= slots_per_week,
                    "Daily templates need at least one full week of history"
                );
                let agg: fn(&[f64]) -> f64 = match kind {
                    TemplateKind::DailyMed => |xs| percentile(xs, 50.0),
                    _ => |xs| xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                };
                let weekday = fill_gaps(history.daily_profile(|d| !d.is_weekend(), agg));
                let weekend = fill_gaps(history.daily_profile(|d| d.is_weekend(), agg));
                Repr::Daily { weekday, weekend }
            }
        };
        PowerTemplate { kind, step, repr }
    }

    /// The strategy this template was built with.
    pub fn kind(&self) -> TemplateKind {
        self.kind
    }

    /// The sampling step the template is defined over.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Predicted value at instant `t`.
    pub fn predict(&self, t: SimTime) -> f64 {
        match &self.repr {
            Repr::Flat(v) => *v,
            Repr::Week(week) => {
                let slot =
                    (t.time_of_week().as_micros() / self.step.as_micros()) as usize % week.len();
                week[slot]
            }
            Repr::Daily { weekday, weekend } => {
                let profile = if t.weekday().is_weekend() {
                    weekend
                } else {
                    weekday
                };
                let slot =
                    (t.time_of_day().as_micros() / self.step.as_micros()) as usize % profile.len();
                profile[slot]
            }
        }
    }

    /// Predicted value at a precomputed instant descriptor.
    ///
    /// Equal to `self.predict(t)` when `slot == TemplateSlot::at(t, self.step())`.
    /// The point is batching: the columnar rack engine computes one
    /// [`TemplateSlot`] per simulation step and probes every server's
    /// template with it, hoisting the `SimTime` decomposition (time-of-day /
    /// time-of-week division, weekday classification) out of the inner
    /// per-server loop. Only the cheap `slot % profile.len()` reduction
    /// remains per template.
    ///
    /// # Panics
    /// Debug-asserts that `slot` was built with this template's step; a
    /// mismatched slot would silently predict for a different instant.
    pub fn predict_at(&self, slot: TemplateSlot) -> f64 {
        debug_assert_eq!(
            slot.step, self.step,
            "TemplateSlot built for a different sampling step"
        );
        match &self.repr {
            Repr::Flat(v) => *v,
            Repr::Week(week) => week[slot.week_slot % week.len()],
            Repr::Daily { weekday, weekend } => {
                let profile = if slot.weekend { weekend } else { weekday };
                profile[slot.day_slot % profile.len()]
            }
        }
    }

    /// Predict a whole series aligned with `like` (same start/step/len).
    pub fn predict_series(&self, like: &TimeSeries) -> TimeSeries {
        let mut out = TimeSeries::new(like.start(), like.step());
        for (t, _) in like.iter() {
            out.push(self.predict(t));
        }
        out
    }

    /// The maximum value this template ever predicts.
    ///
    /// # Panics
    /// Panics if the template is degenerate (empty profile).
    pub fn peak(&self) -> f64 {
        match &self.repr {
            Repr::Flat(v) => *v,
            Repr::Week(w) => w.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Repr::Daily { weekday, weekend } => weekday
                .iter()
                .chain(weekend)
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Apply `f` to every stored value, producing a new template. Used by
    /// fault injection to install a static prediction bias (e.g.
    /// `t.map_values(|v| v * 1.1)` makes the template over-predict by 10 %)
    /// without exposing the internal representation.
    pub fn map_values(mut self, f: impl Fn(f64) -> f64) -> PowerTemplate {
        match &mut self.repr {
            Repr::Flat(v) => *v = f(*v),
            Repr::Week(week) => {
                for v in week {
                    *v = f(*v);
                }
            }
            Repr::Daily { weekday, weekend } => {
                for v in weekday.iter_mut().chain(weekend.iter_mut()) {
                    *v = f(*v);
                }
            }
        }
        self
    }

    /// Earliest instant at or after `from` where the prediction is at least
    /// `threshold`, searching up to `horizon` ahead. Used by the sOA's
    /// time-to-power-exhaustion check (§IV-D).
    pub fn next_time_at_or_above(
        &self,
        from: SimTime,
        threshold: f64,
        horizon: SimDuration,
    ) -> Option<SimTime> {
        let mut t = from.align_down(self.step);
        if t < from {
            t += self.step;
        }
        let end = from + horizon;
        while t <= end {
            if self.predict(t) >= threshold {
                return Some(t);
            }
            t += self.step;
        }
        None
    }
}

/// Replace NaN slots (no samples for that slot in training) by the nearest
/// preceding non-NaN value, falling back to the series mean of defined slots.
fn fill_gaps(mut profile: Vec<f64>) -> Vec<f64> {
    let defined: Vec<f64> = profile.iter().cloned().filter(|v| !v.is_nan()).collect();
    let fallback = if defined.is_empty() {
        0.0
    } else {
        defined.iter().sum::<f64>() / defined.len() as f64
    };
    let mut last = fallback;
    for v in &mut profile {
        if v.is_nan() {
            *v = last;
        } else {
            last = *v;
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two weeks of hourly data: value = 100 + 10·hour_of_day on weekdays,
    /// 50 on weekends; second week has a +5 offset.
    fn history() -> TimeSeries {
        TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_days(14),
            SimDuration::HOUR,
            |t| {
                let base = if t.weekday().is_weekend() {
                    50.0
                } else {
                    100.0 + 10.0 * t.time_of_day().as_hours_f64()
                };
                base + if t.week_index() == 1 { 5.0 } else { 0.0 }
            },
        )
    }

    #[test]
    fn map_values_scales_predictions_everywhere() {
        let h = history();
        for kind in TemplateKind::ALL {
            let base = PowerTemplate::build(&h, kind);
            let biased = base.clone().map_values(|v| v * 1.1);
            assert_eq!(biased.kind(), base.kind());
            let mut t = SimTime::ZERO;
            while t < SimTime::ZERO + SimDuration::from_days(9) {
                let expect = base.predict(t) * 1.1;
                assert!(
                    (biased.predict(t) - expect).abs() < 1e-9,
                    "{kind:?} at {t:?}"
                );
                t += SimDuration::from_hours(5);
            }
            // Identity map leaves the template bit-identical.
            assert_eq!(base.clone().map_values(|v| v), base);
        }
    }

    #[test]
    fn flat_templates_are_constant() {
        let h = history();
        let med = PowerTemplate::build(&h, TemplateKind::FlatMed);
        let max = PowerTemplate::build(&h, TemplateKind::FlatMax);
        let t1 = SimTime::ZERO + SimDuration::from_days(20);
        let t2 = t1 + SimDuration::from_hours(13);
        assert_eq!(med.predict(t1), med.predict(t2));
        assert_eq!(max.predict(t1), h.max());
        assert!(med.predict(t1) < max.predict(t1));
    }

    #[test]
    fn weekly_replays_most_recent_week() {
        let h = history();
        let tpl = PowerTemplate::build(&h, TemplateKind::Weekly);
        // Predicting Tuesday 9AM of any future week gives week-2's value
        // (offset +5).
        let t = SimTime::ZERO
            + SimDuration::from_days(15) // week 3, Tuesday
            + SimDuration::from_hours(9);
        assert_eq!(t.weekday(), simcore::time::Weekday::Tuesday);
        assert_eq!(tpl.predict(t), 100.0 + 90.0 + 5.0);
    }

    #[test]
    fn daily_med_aggregates_across_weekdays() {
        let h = history();
        let tpl = PowerTemplate::build(&h, TemplateKind::DailyMed);
        // Weekday 9AM: all weekday samples at 9AM are 190 (wk1) or 195 (wk2);
        // median of {190 x5, 195 x5} = 192.5.
        let t = SimTime::ZERO + SimDuration::from_days(16) + SimDuration::from_hours(9);
        assert!(!t.weekday().is_weekend());
        assert_eq!(tpl.predict(t), 192.5);
        // Weekend prediction uses the weekend profile.
        let sat = SimTime::ZERO + SimDuration::from_days(19) + SimDuration::from_hours(9);
        assert!(sat.weekday().is_weekend());
        assert_eq!(tpl.predict(sat), 52.5);
    }

    #[test]
    fn daily_max_upper_bounds_daily_med() {
        let h = history();
        let med = PowerTemplate::build(&h, TemplateKind::DailyMed);
        let max = PowerTemplate::build(&h, TemplateKind::DailyMax);
        for hour in 0..24 {
            let t = SimTime::ZERO + SimDuration::from_days(22) + SimDuration::from_hours(hour);
            assert!(max.predict(t) >= med.predict(t));
        }
    }

    #[test]
    fn predict_series_aligns() {
        let h = history();
        let tpl = PowerTemplate::build(&h, TemplateKind::DailyMed);
        let future = TimeSeries::generate(
            SimTime::ZERO + SimDuration::from_days(14),
            SimTime::ZERO + SimDuration::from_days(15),
            SimDuration::HOUR,
            |_| 0.0,
        );
        let pred = tpl.predict_series(&future);
        assert_eq!(pred.len(), future.len());
        assert_eq!(pred.start(), future.start());
    }

    #[test]
    fn peak_is_max_prediction() {
        let h = history();
        let tpl = PowerTemplate::build(&h, TemplateKind::DailyMed);
        // Weekday 11PM median = (330+335)/2.
        assert_eq!(tpl.peak(), 332.5);
    }

    #[test]
    fn next_time_at_or_above_finds_morning_ramp() {
        let h = history();
        let tpl = PowerTemplate::build(&h, TemplateKind::DailyMed);
        // From Wednesday midnight, find when prediction reaches 250
        // (hour 15 has median 252.5).
        let from = SimTime::ZERO + SimDuration::from_days(16);
        let hit = tpl
            .next_time_at_or_above(from, 250.0, SimDuration::from_days(1))
            .expect("threshold is reached in the afternoon");
        assert_eq!(hit.since(from), SimDuration::from_hours(15));
        // A threshold above the peak is never reached.
        assert_eq!(
            tpl.next_time_at_or_above(from, 1e9, SimDuration::from_days(2)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one full week")]
    fn daily_requires_full_week() {
        let short = TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_days(3),
            SimDuration::HOUR,
            |_| 1.0,
        );
        let _ = PowerTemplate::build(&short, TemplateKind::DailyMed);
    }

    #[test]
    fn fill_gaps_interpolates() {
        let filled = fill_gaps(vec![f64::NAN, 1.0, f64::NAN, 3.0]);
        assert_eq!(filled, vec![2.0, 1.0, 1.0, 3.0]); // leading NaN -> mean(1,3)=2
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(TemplateKind::DailyMed.to_string(), "DailyMed");
        assert_eq!(TemplateKind::ALL.len(), 5);
    }
}

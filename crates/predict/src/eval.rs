//! Walk-forward template evaluation.
//!
//! Reproduces the deployment discipline of §IV-B: a template is built from
//! one week of history and used for the following week, then rebuilt. The
//! resulting error distributions are what Fig. 8 (RMSE CDF across racks) and
//! Fig. 15 (mean-error CDF per technique) plot.

use crate::template::{PowerTemplate, TemplateKind};
use serde::{Deserialize, Serialize};
use simcore::series::TimeSeries;
use simcore::stats::{mean_error, rmse};
use simcore::time::{SimDuration, SimTime};

/// Accuracy of one walk-forward evaluation over a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalkForwardReport {
    /// Root-mean-squared error across all evaluated samples.
    pub rmse: f64,
    /// Mean signed error (positive = overprediction).
    pub mean_error: f64,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Number of evaluated weeks.
    pub weeks: usize,
}

/// Evaluate `kind` on `series` by building a template from each week and
/// scoring it on the next.
///
/// # Panics
/// Panics if `series` holds fewer than two full weeks.
pub fn walk_forward(series: &TimeSeries, kind: TemplateKind) -> WalkForwardReport {
    let week_us = SimDuration::WEEK.as_micros();
    let total_weeks = (series.end().since(series.start()).as_micros() / week_us) as usize;
    assert!(
        total_weeks >= 2,
        "walk-forward evaluation needs at least two full weeks"
    );

    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    for week in 1..total_weeks {
        let train_start = series.start() + SimDuration::WEEK * (week as u64 - 1);
        let train_end = series.start() + SimDuration::WEEK * week as u64;
        let test_end = series.start() + SimDuration::WEEK * (week as u64 + 1);
        let train = series.slice(train_start, train_end);
        let test = series.slice(train_end, test_end);
        let template = PowerTemplate::build(&train, kind);
        for (t, v) in test.iter() {
            predicted.push(template.predict(t));
            actual.push(v);
        }
    }
    WalkForwardReport {
        rmse: rmse(&predicted, &actual),
        mean_error: mean_error(&predicted, &actual),
        samples: predicted.len(),
        weeks: total_weeks - 1,
    }
}

/// Evaluate all five techniques on one series.
pub fn compare_all(series: &TimeSeries) -> Vec<(TemplateKind, WalkForwardReport)> {
    TemplateKind::ALL
        .iter()
        .map(|&k| (k, walk_forward(series, k)))
        .collect()
}

/// Build a template at a given instant from the trailing week of history —
/// the online operation an agent performs weekly (§IV-B).
///
/// # Panics
/// Panics if `history` does not cover the week before `now`.
pub fn template_at(history: &TimeSeries, now: SimTime, kind: TemplateKind) -> PowerTemplate {
    let train_start = now - SimDuration::WEEK;
    assert!(
        history.start() <= train_start && history.end() >= now,
        "history must cover the week before `now`"
    );
    let train = history.slice(train_start, now);
    PowerTemplate::build(&train, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Pcg32;

    /// Repeating diurnal signal with mild noise and one outlier day in week 2.
    fn noisy_series(weeks: u64, outlier: bool) -> TimeSeries {
        let mut rng = Pcg32::seed_from_u64(42);
        TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::WEEK * weeks,
            SimDuration::from_minutes(30),
            |t| {
                let h = t.time_of_day().as_hours_f64();
                let diurnal = 200.0 + 80.0 * (-((h - 13.0) / 4.0).powi(2)).exp();
                let noise = 3.0 * rng.sample_standard_normal();
                let holiday = outlier && t.day_index() == 9; // a Wednesday in week 2
                let scale = if holiday { 0.5 } else { 1.0 };
                diurnal * scale + noise
            },
        )
    }

    #[test]
    fn daily_med_beats_flat_templates_on_diurnal_signal() {
        let s = noisy_series(4, false);
        let daily = walk_forward(&s, TemplateKind::DailyMed);
        let flat_med = walk_forward(&s, TemplateKind::FlatMed);
        let flat_max = walk_forward(&s, TemplateKind::FlatMax);
        assert!(
            daily.rmse < flat_med.rmse,
            "{} vs {}",
            daily.rmse,
            flat_med.rmse
        );
        assert!(
            daily.rmse < flat_max.rmse,
            "{} vs {}",
            daily.rmse,
            flat_max.rmse
        );
    }

    #[test]
    fn flat_max_overpredicts_flat_med_underpredicts_peaks() {
        let s = noisy_series(3, false);
        let max = walk_forward(&s, TemplateKind::FlatMax);
        let med = walk_forward(&s, TemplateKind::FlatMed);
        assert!(max.mean_error > 0.0, "FlatMax bias {}", max.mean_error);
        assert!(med.mean_error < max.mean_error);
    }

    #[test]
    fn outlier_day_hurts_weekly_more_than_daily_med() {
        // The holiday lands in a training week; Weekly replays it verbatim,
        // DailyMed's median across five weekdays absorbs it (§IV-B intuition).
        let s = noisy_series(4, true);
        let weekly = walk_forward(&s, TemplateKind::Weekly);
        let daily = walk_forward(&s, TemplateKind::DailyMed);
        assert!(
            daily.rmse < weekly.rmse,
            "DailyMed {} should beat Weekly {} with outliers",
            daily.rmse,
            weekly.rmse
        );
    }

    #[test]
    fn report_counts_weeks_and_samples() {
        let s = noisy_series(3, false);
        let r = walk_forward(&s, TemplateKind::DailyMed);
        assert_eq!(r.weeks, 2);
        assert_eq!(r.samples, 2 * 7 * 48);
    }

    #[test]
    fn compare_all_covers_every_kind() {
        let s = noisy_series(2, false);
        let results = compare_all(&s);
        assert_eq!(results.len(), 5);
        let kinds: Vec<TemplateKind> = results.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, TemplateKind::ALL.to_vec());
    }

    #[test]
    fn template_at_uses_trailing_week() {
        let s = noisy_series(3, false);
        let now = SimTime::ZERO + SimDuration::WEEK * 2;
        let tpl = template_at(&s, now, TemplateKind::DailyMed);
        // Should predict close to the known diurnal peak (~280).
        let t_peak = now + SimDuration::from_hours(13);
        assert!((tpl.predict(t_peak) - 280.0).abs() < 15.0);
    }

    #[test]
    #[should_panic(expected = "at least two full weeks")]
    fn walk_forward_needs_two_weeks() {
        let s = noisy_series(1, false);
        let _ = walk_forward(&s, TemplateKind::DailyMed);
    }

    #[test]
    #[should_panic(expected = "history must cover")]
    fn template_at_validates_coverage() {
        let s = noisy_series(2, false);
        let _ = template_at(
            &s,
            SimTime::ZERO + SimDuration::WEEK * 5,
            TemplateKind::DailyMed,
        );
    }
}

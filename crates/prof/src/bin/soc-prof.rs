//! `soc-prof` — profile snapshot tooling.
//!
//! ```text
//! soc-prof show <profile.json>
//!     Render a snapshot human-readably.
//!
//! soc-prof diff <baseline.json> <current.json> [options]
//!     Compare two snapshots. Exit 0 when current is within tolerance of
//!     baseline, 1 on a wall-clock regression (or a phase missing from the
//!     current run), 2 on usage or I/O errors.
//!
//!     --threshold <pct>         uniform tolerance for total and phases
//!     --total-threshold <pct>   tolerance for the total wall clock only
//!     --phase-threshold <pct>   tolerance for per-phase wall clock only
//!     --noise-floor-ms <ms>     ignore phases under this in both snapshots
//!     --json                    print the JSON report instead of text
//!     --out <path>              also write the JSON report to a file
//! ```
//!
//! This is the CI perf gate: the perf job runs the pinned bench, then
//! `soc-prof diff BENCH_largescale.json current.json --threshold <generous>`
//! and fails the build on a nonzero exit.

use soc_prof::{diff, Snapshot, Tolerance};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("show") => cmd_show(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage:\n  soc-prof show <profile.json>\n  soc-prof diff <baseline.json> <current.json> \
[--threshold <pct>] [--total-threshold <pct>] [--phase-threshold <pct>] \
[--noise-floor-ms <ms>] [--json] [--out <path>]\n";

fn load(path: &Path) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Snapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_show(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match load(Path::new(path)) {
        Ok(snap) => {
            print!("{}", snap.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

struct DiffArgs {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: Tolerance,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_diff_args(args: &[String]) -> Result<DiffArgs, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tolerance = Tolerance::default();
    let mut json = false;
    let mut out = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<f64, String> {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--threshold" => {
                let pct = value("--threshold")?;
                tolerance.total_tolerance_pct = pct;
                tolerance.phase_tolerance_pct = pct;
            }
            "--total-threshold" => tolerance.total_tolerance_pct = value("--total-threshold")?,
            "--phase-threshold" => tolerance.phase_tolerance_pct = value("--phase-threshold")?,
            "--noise-floor-ms" => tolerance.noise_floor_ms = value("--noise-floor-ms")?,
            "--json" => json = true,
            "--out" => {
                out = Some(PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--out needs a path".to_string())?,
                ));
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline, current] = <[PathBuf; 2]>::try_from(paths)
        .map_err(|_| "diff needs exactly <baseline.json> <current.json>".to_string())?;
    Ok(DiffArgs {
        baseline,
        current,
        tolerance,
        json,
        out,
    })
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let parsed = match parse_diff_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (baseline, current) = match (load(&parsed.baseline), load(&parsed.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = diff(&baseline, &current, &parsed.tolerance);
    if parsed.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if let Some(out) = &parsed.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("error: failed to write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!("diff report written to {}", out.display());
    }
    if report.has_regression() {
        eprintln!("perf regression detected (see entries marked REGRESSED/MISSING above)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Scoped wall-clock phase timers with nesting.
//!
//! A [`PhaseGuard`] measures the wall time between its creation and its
//! drop, accumulating into the owning profiler under a `/`-joined path.
//! Nesting is tracked per thread: a guard created while another guard on
//! the *same thread* is alive records under the parent's path
//! (`sim/admission`). Worker threads start with an empty stack, so phases
//! opened inside `simcore::par` workers record under stable top-level
//! names regardless of what the spawning thread was doing — the snapshot
//! keys are identical for `--threads 1` and `--threads N`.
//!
//! Bench binaries that time *across* a parallel fan-out (where the guard
//! would live on the main thread while the work happens on workers) should
//! use [`crate::Profiler::record`] instead of holding a guard open, for the
//! same key-stability reason.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Accumulated statistics for one phase path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time across spans.
    pub total: Duration,
    /// Shortest span.
    pub min: Duration,
    /// Longest span.
    pub max: Duration,
}

impl PhaseStats {
    /// Fold one completed span into the stats.
    pub fn record(&mut self, elapsed: Duration) {
        if self.count == 0 {
            self.min = elapsed;
            self.max = elapsed;
        } else {
            self.min = self.min.min(elapsed);
            self.max = self.max.max(elapsed);
        }
        self.count += 1;
        self.total += elapsed;
    }
}

thread_local! {
    /// Stack of full phase paths open on this thread.
    static PHASE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Join `name` under the innermost open phase on this thread (if any) and
/// push the result. Returns the full path and the stack depth *before* the
/// push, so an out-of-order drop can restore a consistent stack.
pub(crate) fn push_phase(name: &str) -> (String, usize) {
    PHASE_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        let depth = stack.len();
        stack.push(path.clone());
        (path, depth)
    })
}

/// Pop back to `depth` (drops any child phases a caller forgot to end —
/// their timings were already folded in when *their* guards dropped).
pub(crate) fn pop_phase(depth: usize) {
    PHASE_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.truncate(depth);
    });
}

/// RAII span: measures from creation to drop and folds the elapsed wall
/// time into the profiler it came from. Obtained via
/// [`crate::Profiler::phase`]; inert when the profiler is disabled.
#[must_use = "a phase guard measures until it is dropped; binding it to _ ends it immediately"]
pub struct PhaseGuard {
    pub(crate) live: Option<LiveGuard>,
}

pub(crate) struct LiveGuard {
    pub(crate) profiler: crate::Profiler,
    pub(crate) path: String,
    pub(crate) depth: usize,
    pub(crate) start: Instant,
}

impl PhaseGuard {
    /// The full `/`-joined path this guard records under, or `None` when
    /// the profiler is disabled.
    pub fn path(&self) -> Option<&str> {
        self.live.as_ref().map(|l| l.path.as_str())
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let elapsed = live.start.elapsed();
            pop_phase(live.depth);
            live.profiler.record(&live.path, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fold_min_max() {
        let mut s = PhaseStats::default();
        s.record(Duration::from_millis(4));
        s.record(Duration::from_millis(2));
        s.record(Duration::from_millis(6));
        assert_eq!(s.count, 3);
        assert_eq!(s.total, Duration::from_millis(12));
        assert_eq!(s.min, Duration::from_millis(2));
        assert_eq!(s.max, Duration::from_millis(6));
    }

    #[test]
    fn push_pop_tracks_nesting() {
        let (outer, d0) = push_phase("outer");
        assert_eq!(outer, "outer");
        let (inner, d1) = push_phase("inner");
        assert_eq!(inner, "outer/inner");
        pop_phase(d1);
        let (sibling, d2) = push_phase("sibling");
        assert_eq!(sibling, "outer/sibling");
        pop_phase(d2);
        pop_phase(d0);
        let (fresh, d3) = push_phase("fresh");
        assert_eq!(fresh, "fresh");
        pop_phase(d3);
    }
}

//! Snapshot comparison: the perf-regression gate behind `soc-prof diff`.
//!
//! Compares a *current* snapshot against a committed *baseline* under a
//! [`Tolerance`]. Wall-clock comparisons are ratio-based per phase plus the
//! grand total; everything else (counters, memory, rates) is reported but
//! never gates, because allocation counts and RSS vary across toolchains
//! and machines while a >threshold wall-clock blowup on the same machine
//! class is an actionable signal.
//!
//! Gate semantics, pinned by tests:
//!
//! * a phase slower than baseline by **strictly more** than
//!   `phase_tolerance_pct` regresses (exact-boundary deltas pass);
//! * the total wall clock gates the same way under `total_tolerance_pct`;
//! * a phase present in the baseline but missing from the current run
//!   regresses — the bench changed shape and the baseline must be
//!   regenerated deliberately, not silently;
//! * a new phase never regresses (it is reported as `new`);
//! * phases whose wall clock is below `noise_floor_ms` in both snapshots
//!   are ignored entirely — micro-phases jitter far above any sensible
//!   percentage threshold;
//! * improvements never gate, however large.

use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// Thresholds for [`diff`]. Percentages are slowdowns relative to the
/// baseline: 25.0 means "fail if current > 1.25 × baseline".
#[derive(Debug, Clone, PartialEq)]
pub struct Tolerance {
    /// Allowed slowdown of the total wall clock, in percent.
    pub total_tolerance_pct: f64,
    /// Allowed per-phase slowdown, in percent.
    pub phase_tolerance_pct: f64,
    /// Phases faster than this in both snapshots are ignored.
    pub noise_floor_ms: f64,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            total_tolerance_pct: 25.0,
            phase_tolerance_pct: 40.0,
            noise_floor_ms: 5.0,
        }
    }
}

impl Tolerance {
    /// A uniform tolerance: `pct` for the total and every phase.
    pub fn uniform(pct: f64) -> Tolerance {
        Tolerance {
            total_tolerance_pct: pct,
            phase_tolerance_pct: pct,
            ..Tolerance::default()
        }
    }
}

/// Verdict for one compared entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or under the noise floor).
    Ok,
    /// Faster than baseline beyond the tolerance — good news, never gates.
    Improved,
    /// Slower than baseline beyond the tolerance.
    Regressed,
    /// In the baseline, absent from the current snapshot.
    Missing,
    /// In the current snapshot, absent from the baseline.
    New,
}

impl Verdict {
    /// Does this verdict fail the gate?
    pub fn gates(self) -> bool {
        matches!(self, Verdict::Regressed | Verdict::Missing)
    }

    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One compared entry (the total or one phase).
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// `total` or the phase path.
    pub name: String,
    /// Baseline wall clock in ms (0 for `New`).
    pub baseline_ms: f64,
    /// Current wall clock in ms (0 for `Missing`).
    pub current_ms: f64,
    /// Percent change (+ = slower); 0 when either side is absent.
    pub delta_pct: f64,
    pub verdict: Verdict,
}

/// Full comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Baseline snapshot name.
    pub baseline_name: String,
    /// Current snapshot name.
    pub current_name: String,
    /// Tolerance the comparison ran under.
    pub tolerance: Tolerance,
    /// The total wall-clock comparison.
    pub total: Delta,
    /// Per-phase comparisons in baseline key order, then new phases.
    pub phases: Vec<Delta>,
    /// Counter drifts (informational): `(name, baseline, current)`.
    pub counters: Vec<(String, u64, u64)>,
}

impl DiffReport {
    /// Does anything fail the gate?
    pub fn has_regression(&self) -> bool {
        self.total.verdict.gates() || self.phases.iter().any(|p| p.verdict.gates())
    }

    /// Number of phases actually compared (present on both sides and above
    /// the noise floor). The CI gate asserts this is nonzero so a
    /// malformed snapshot cannot silently pass as "no regressions".
    pub fn compared_phases(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| {
                matches!(
                    p.verdict,
                    Verdict::Ok | Verdict::Improved | Verdict::Regressed
                )
            })
            .count()
    }

    /// Human summary, one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf diff: {} (baseline) vs {} (current), tolerance total +{:.0}% / phase +{:.0}%",
            self.baseline_name,
            self.current_name,
            self.tolerance.total_tolerance_pct,
            self.tolerance.phase_tolerance_pct,
        );
        let width = self
            .phases
            .iter()
            .map(|p| p.name.len())
            .chain([5])
            .max()
            .unwrap_or(5);
        let mut line = |d: &Delta| {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>10.1} ms -> {:>10.1} ms  {:>+7.1}%  {}",
                d.name,
                d.baseline_ms,
                d.current_ms,
                d.delta_pct,
                d.verdict.label(),
            );
        };
        line(&self.total);
        for d in &self.phases {
            line(d);
        }
        for (name, base, cur) in &self.counters {
            if base != cur {
                let _ = writeln!(out, "  counter {name}: {base} -> {cur}");
            }
        }
        let _ = writeln!(
            out,
            "phases compared: {}, regressions: {}",
            self.compared_phases(),
            self.phases.iter().filter(|p| p.verdict.gates()).count()
                + usize::from(self.total.verdict.gates()),
        );
        out
    }

    /// Machine-readable report (used by the CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"baseline\": {},",
            crate::json::escape(&self.baseline_name)
        );
        let _ = writeln!(
            out,
            "  \"current\": {},",
            crate::json::escape(&self.current_name)
        );
        let _ = writeln!(out, "  \"regression\": {},", self.has_regression());
        let _ = writeln!(out, "  \"compared_phases\": {},", self.compared_phases());
        out.push_str("  \"entries\": [\n");
        let all = std::iter::once(&self.total).chain(self.phases.iter());
        let rendered: Vec<String> = all
            .map(|d| {
                format!(
                    "    {{\"name\": {}, \"baseline_ms\": {}, \"current_ms\": {}, \
                     \"delta_pct\": {}, \"verdict\": {}}}",
                    crate::json::escape(&d.name),
                    crate::json::fmt_num(d.baseline_ms),
                    crate::json::fmt_num(d.current_ms),
                    crate::json::fmt_num(d.delta_pct),
                    crate::json::escape(d.verdict.label()),
                )
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Classify one timing pair under a percentage tolerance.
fn classify(baseline_ms: f64, current_ms: f64, tolerance_pct: f64) -> (f64, Verdict) {
    if baseline_ms <= 0.0 {
        // A zero-time baseline phase cannot express a ratio; treat any
        // measurable current time as new information, not a regression.
        return (0.0, Verdict::Ok);
    }
    let delta_pct = (current_ms - baseline_ms) / baseline_ms * 100.0;
    let verdict = if delta_pct > tolerance_pct {
        Verdict::Regressed
    } else if delta_pct < -tolerance_pct {
        Verdict::Improved
    } else {
        Verdict::Ok
    };
    (delta_pct, verdict)
}

/// Compare `current` against `baseline` under `tolerance`.
pub fn diff(baseline: &Snapshot, current: &Snapshot, tolerance: &Tolerance) -> DiffReport {
    let (delta_pct, verdict) = classify(
        baseline.total_ms,
        current.total_ms,
        tolerance.total_tolerance_pct,
    );
    let total = Delta {
        name: "total".to_string(),
        baseline_ms: baseline.total_ms,
        current_ms: current.total_ms,
        delta_pct,
        verdict,
    };
    let mut phases = Vec::new();
    for (path, base) in &baseline.phases {
        match current.phases.get(path) {
            Some(cur) => {
                let under_floor = base.total_ms < tolerance.noise_floor_ms
                    && cur.total_ms < tolerance.noise_floor_ms;
                let (delta_pct, verdict) = if under_floor {
                    (0.0, Verdict::Ok)
                } else {
                    classify(base.total_ms, cur.total_ms, tolerance.phase_tolerance_pct)
                };
                phases.push(Delta {
                    name: path.clone(),
                    baseline_ms: base.total_ms,
                    current_ms: cur.total_ms,
                    delta_pct,
                    verdict,
                });
            }
            None => phases.push(Delta {
                name: path.clone(),
                baseline_ms: base.total_ms,
                current_ms: 0.0,
                delta_pct: 0.0,
                verdict: Verdict::Missing,
            }),
        }
    }
    for (path, cur) in &current.phases {
        if !baseline.phases.contains_key(path) {
            phases.push(Delta {
                name: path.clone(),
                baseline_ms: 0.0,
                current_ms: cur.total_ms,
                delta_pct: 0.0,
                verdict: Verdict::New,
            });
        }
    }
    let mut counters = Vec::new();
    for (name, base) in &baseline.counters {
        counters.push((
            name.clone(),
            *base,
            current.counters.get(name).copied().unwrap_or(0),
        ));
    }
    for (name, cur) in &current.counters {
        if !baseline.counters.contains_key(name) {
            counters.push((name.clone(), 0, *cur));
        }
    }
    DiffReport {
        baseline_name: baseline.name.clone(),
        current_name: current.name.clone(),
        tolerance: tolerance.clone(),
        total,
        phases,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::PhaseSnap;

    fn snap(name: &str, total_ms: f64, phases: &[(&str, f64)]) -> Snapshot {
        let mut s = Snapshot {
            schema: crate::snapshot::SCHEMA,
            name: name.into(),
            total_ms,
            ..Snapshot::default()
        };
        for (path, ms) in phases {
            s.phases.insert(
                (*path).to_string(),
                PhaseSnap {
                    count: 1,
                    total_ms: *ms,
                    min_ms: *ms,
                    max_ms: *ms,
                },
            );
        }
        s
    }

    #[test]
    fn within_tolerance_passes() {
        let base = snap("base", 100.0, &[("sim", 80.0)]);
        let cur = snap("cur", 110.0, &[("sim", 90.0)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert!(!report.has_regression());
        assert_eq!(report.compared_phases(), 1);
    }

    #[test]
    fn exact_boundary_is_not_a_regression() {
        // +25.0% against a 25% tolerance: strictly-greater semantics.
        let base = snap("base", 100.0, &[("sim", 100.0)]);
        let cur = snap("cur", 125.0, &[("sim", 125.0)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert_eq!(report.total.verdict, Verdict::Ok);
        assert_eq!(report.phases[0].verdict, Verdict::Ok);
        assert!(!report.has_regression());
        // One more part in a million tips it over.
        let cur = snap("cur", 125.01, &[("sim", 125.01)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert!(report.has_regression());
    }

    #[test]
    fn missing_phase_gates() {
        let base = snap("base", 100.0, &[("sim", 50.0), ("merge", 50.0)]);
        let cur = snap("cur", 100.0, &[("sim", 50.0)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert!(report.has_regression());
        let missing = report.phases.iter().find(|p| p.name == "merge").unwrap();
        assert_eq!(missing.verdict, Verdict::Missing);
    }

    #[test]
    fn new_phase_does_not_gate() {
        let base = snap("base", 100.0, &[("sim", 100.0)]);
        let cur = snap("cur", 100.0, &[("sim", 100.0), ("merge", 30.0)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert!(!report.has_regression());
        let new = report.phases.iter().find(|p| p.name == "merge").unwrap();
        assert_eq!(new.verdict, Verdict::New);
        // New phases are not "compared".
        assert_eq!(report.compared_phases(), 1);
    }

    #[test]
    fn noise_floor_ignores_micro_phases() {
        // 0.1 ms -> 4 ms is a 3900% blowup but far below the floor.
        let base = snap("base", 100.0, &[("tiny", 0.1)]);
        let cur = snap("cur", 100.0, &[("tiny", 4.0)]);
        let report = diff(&base, &cur, &Tolerance::default());
        assert!(!report.has_regression());
        // Crossing the floor re-arms the ratio check.
        let cur = snap("cur", 100.0, &[("tiny", 50.0)]);
        let report = diff(&base, &cur, &Tolerance::default());
        assert!(report.has_regression());
    }

    #[test]
    fn improvements_never_gate() {
        let base = snap("base", 100.0, &[("sim", 100.0)]);
        let cur = snap("cur", 10.0, &[("sim", 10.0)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert_eq!(report.total.verdict, Verdict::Improved);
        assert!(!report.has_regression());
    }

    #[test]
    fn zero_baseline_phase_is_tolerated() {
        let base = snap("base", 100.0, &[("sim", 0.0)]);
        let cur = snap("cur", 100.0, &[("sim", 50.0)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert!(!report.has_regression());
    }

    #[test]
    fn render_and_json_carry_the_verdicts() {
        let base = snap("base", 100.0, &[("sim", 50.0), ("merge", 50.0)]);
        let cur = snap("cur", 200.0, &[("sim", 150.0)]);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        let text = report.render();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("MISSING"));
        assert!(text.contains("phases compared: 1"));
        let json = report.to_json();
        assert!(json.contains("\"regression\": true"));
        let parsed = crate::json::parse(&json).unwrap();
        assert!(parsed.as_obj().unwrap().contains_key("entries"));
    }

    #[test]
    fn counter_drift_is_reported_not_gated() {
        let mut base = snap("base", 100.0, &[("sim", 100.0)]);
        base.counters.insert("racks".into(), 8);
        let mut cur = snap("cur", 100.0, &[("sim", 100.0)]);
        cur.counters.insert("racks".into(), 16);
        let report = diff(&base, &cur, &Tolerance::uniform(25.0));
        assert!(!report.has_regression());
        assert_eq!(report.counters, vec![("racks".to_string(), 8, 16)]);
        assert!(report.render().contains("counter racks: 8 -> 16"));
    }
}

//! Minimal JSON reader/writer for profile snapshots.
//!
//! Hand-rolled for the same reason soc-telemetry hand-rolls its JSONL
//! export: the profiling layer must stay dependency-free so it can be
//! linked into every bench binary without dragging a serialization stack
//! along. The subset implemented here is exactly what [`crate::Snapshot`]
//! needs: objects, strings, finite numbers, booleans, and arrays.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The number, if this value is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape `s` into a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a finite float with enough precision to round-trip the values a
/// snapshot carries (milliseconds, rates) without trailing-zero noise.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Inf/NaN; snapshots never produce them, but the writer
        // must still emit valid JSON if a caller does.
        return "0".to_string();
    }
    // Rust's float Display is the shortest decimal that round-trips to the
    // same bits, in positional notation — canonical and lossless.
    format!("{v}")
}

/// Parse a JSON document. Returns the root value or a message pointing at
/// the byte offset where parsing failed.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogate pairs are not needed for snapshot
                            // keys; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let rest = &self.bytes[self.pos - 1..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos - 1))?;
                    let Some(c) = text.chars().next() else {
                        return Err("unterminated string".to_string());
                    };
                    out.push(c);
                    self.pos = self.pos - 1 + c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": 2}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["c"].as_num(), Some(2.0));
        match &obj["a"] {
            Value::Arr(items) => {
                assert_eq!(items[0].as_num(), Some(1.0));
                assert_eq!(items[1].as_obj().unwrap()["b"].as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote \" slash \\ newline \n tab \t unicode é";
        let parsed = parse(&escape(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn fmt_num_is_compact_and_round_trips() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.25), "0.25");
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(parse(&fmt_num(1234.5678)).unwrap(), Value::Num(1234.5678));
    }
}

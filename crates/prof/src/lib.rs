//! # soc-prof — wall-clock performance observability for SmartOClock
//!
//! The workspace's sim-state crates are forbidden from reading the wall
//! clock (soc-lint D002): a seed must fully determine every byte they
//! compute. But ROADMAP direction 1 ("100k racks, a simulated week in
//! seconds") needs exactly the numbers determinism forbids — wall time per
//! phase, racks per second, memory high-water marks. This crate is the
//! resolution: **all** wall-clock observation lives here and in the bench
//! binaries that link it, strictly outside the deterministic core, and the
//! sim crates expose pure observation *hooks*
//! (`soc_cluster::probe::ShardProbe`) that this layer implements. Profiling
//! on or off never changes a trace byte (pinned by
//! `tests/prof.rs`).
//!
//! Four pieces:
//!
//! * **Phase timers** ([`Profiler::phase`]) — scoped RAII spans with
//!   per-thread nesting (`sim/admission`); totals, counts, min/max per
//!   `/`-joined path. [`Profiler::record`] folds in externally measured
//!   durations for timings that span a parallel fan-out.
//! * **Throughput counters** ([`Profiler::add`]) — monotonic work counts
//!   (racks, sim_steps, events); snapshots derive `*_per_sec` rates.
//! * **Memory sampling** ([`mem`]) — peak RSS from procfs and an opt-in
//!   counting global allocator ([`CountingAlloc`]).
//! * **Snapshots and diffs** ([`Snapshot`], [`diff`]) — a canonical JSON
//!   profile format (`BENCH_largescale.json` is one) and a tolerance-based
//!   comparison that exits nonzero on regression (`soc-prof diff`, the CI
//!   perf gate).
//!
//! A disabled handle ([`Profiler::disabled`], also `Default`) is a `None`
//! internally, mirroring `soc_telemetry::Telemetry`: every call site first
//! branches on enablement, so always-on instrumentation costs one branch
//! when profiling is off.
//!
//! ```
//! use soc_prof::{Profiler, Tolerance};
//!
//! let prof = Profiler::new("example");
//! {
//!     let _setup = prof.phase("setup");
//!     let _inner = prof.phase("templates"); // records as setup/templates
//! }
//! prof.add("racks", 8);
//! let snap = prof.snapshot();
//! assert!(snap.phases.contains_key("setup/templates"));
//! let report = soc_prof::diff(&snap, &snap, &Tolerance::default());
//! assert!(!report.has_regression());
//! ```

// `deny` rather than the workspace's usual `forbid`: mem.rs carries the one
// sanctioned `unsafe impl` in the tree (GlobalAlloc is an unsafe trait), a
// verbatim delegation to `std::alloc::System` plus two atomic increments.
#![deny(unsafe_code)]

pub mod diff;
pub mod json;
pub mod mem;
pub mod phase;
pub mod snapshot;

pub use diff::{diff, Delta, DiffReport, Tolerance, Verdict};
pub use mem::{alloc_counts, peak_rss_bytes, CountingAlloc};
pub use phase::{PhaseGuard, PhaseStats};
pub use snapshot::{PhaseSnap, Snapshot, SCHEMA};

use phase::LiveGuard;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

#[derive(Default)]
struct State {
    phases: BTreeMap<String, PhaseStats>,
    counters: BTreeMap<String, u64>,
    rates: BTreeMap<String, f64>,
    meta: BTreeMap<String, String>,
}

struct Inner {
    name: String,
    start: Instant,
    state: Mutex<State>,
}

/// Cheap cloneable handle to a profile under construction.
///
/// Clones share the underlying accumulators, so worker threads can record
/// phases concurrently; snapshot maps are ordered (`BTreeMap`), which keeps
/// snapshot bytes independent of recording order. The default handle is
/// disabled.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Profiler {
    /// An enabled profiler named `name` (the experiment/binary name); the
    /// total wall clock starts now.
    pub fn new(name: &str) -> Profiler {
        Profiler {
            inner: Some(Arc::new(Inner {
                name: name.to_string(),
                start: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A disabled handle: every operation is a no-op after one branch.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// Is this handle recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Profile state under the lock. Poisoning is survivable here — the
    /// accumulators hold plain counters that are valid after any partial
    /// update — so a panicked worker thread does not also take down the
    /// profile of the work that succeeded.
    fn state(inner: &Inner) -> MutexGuard<'_, State> {
        inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Begin a scoped phase. The returned guard measures until drop and
    /// nests under any phase already open on this thread (see [`phase`]).
    /// Inert when disabled.
    pub fn phase(&self, name: &str) -> PhaseGuard {
        match &self.inner {
            Some(_) => {
                let (path, depth) = phase::push_phase(name);
                PhaseGuard {
                    live: Some(LiveGuard {
                        profiler: self.clone(),
                        path,
                        depth,
                        start: Instant::now(),
                    }),
                }
            }
            None => PhaseGuard { live: None },
        }
    }

    /// Fold an externally measured duration into phase `path` (no nesting
    /// logic — the path is taken literally). For timings that span a
    /// parallel fan-out, where holding a [`PhaseGuard`] on the spawning
    /// thread would nest worker phases differently at `--threads 1`.
    pub fn record(&self, path: &str, elapsed: Duration) {
        if let Some(inner) = &self.inner {
            Self::state(inner)
                .phases
                .entry(path.to_string())
                .or_default()
                .record(elapsed);
        }
    }

    /// Add `n` to the monotonic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            *Self::state(inner)
                .counters
                .entry(name.to_string())
                .or_insert(0) += n;
        }
    }

    /// Set a derived rate (overrides the auto-derived `*_per_sec` value of
    /// a same-named counter in the snapshot).
    pub fn set_rate(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            Self::state(inner).rates.insert(name.to_string(), value);
        }
    }

    /// Attach a configuration key to the snapshot (`racks=32`, `seed=42`).
    pub fn set_meta(&self, key: &str, value: impl fmt::Display) {
        if let Some(inner) = &self.inner {
            Self::state(inner)
                .meta
                .insert(key.to_string(), value.to_string());
        }
    }

    /// Elapsed wall time since this profiler was created (zero when
    /// disabled).
    pub fn elapsed(&self) -> Duration {
        match &self.inner {
            Some(inner) => inner.start.elapsed(),
            None => Duration::ZERO,
        }
    }

    /// Materialize the profile: phases and counters recorded so far, a
    /// `*_per_sec` rate per counter (custom rates win), peak RSS, and
    /// allocator counts. A disabled profiler snapshots to the empty
    /// default.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let elapsed = inner.start.elapsed();
        let state = Self::state(inner);
        let mut snap = Snapshot {
            schema: SCHEMA,
            name: inner.name.clone(),
            meta: state.meta.clone(),
            total_ms: elapsed.as_secs_f64() * 1e3,
            counters: state.counters.clone(),
            peak_rss_bytes: mem::peak_rss_bytes(),
            ..Snapshot::default()
        };
        (snap.alloc_count, snap.alloc_bytes) = mem::alloc_counts();
        for (path, stats) in &state.phases {
            snap.phases.insert(path.clone(), PhaseSnap::from(stats));
        }
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            for (name, count) in &state.counters {
                snap.rates
                    .insert(format!("{name}_per_sec"), *count as f64 / secs);
            }
        }
        for (name, value) in &state.rates {
            snap.rates.insert(name.clone(), *value);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_profiler_is_inert() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        let guard = prof.phase("anything");
        assert_eq!(guard.path(), None);
        drop(guard);
        prof.add("racks", 5);
        prof.set_meta("k", "v");
        prof.record("manual", Duration::from_millis(3));
        let snap = prof.snapshot();
        assert_eq!(snap, Snapshot::default());
    }

    #[test]
    fn phases_nest_per_thread() {
        let prof = Profiler::new("nesting");
        {
            let outer = prof.phase("outer");
            assert_eq!(outer.path(), Some("outer"));
            {
                let inner = prof.phase("inner");
                assert_eq!(inner.path(), Some("outer/inner"));
            }
            let sibling = prof.phase("sibling");
            assert_eq!(sibling.path(), Some("outer/sibling"));
        }
        let top = prof.phase("top");
        assert_eq!(top.path(), Some("top"));
        drop(top);
        let snap = prof.snapshot();
        let keys: Vec<&str> = snap.phases.keys().map(String::as_str).collect();
        assert_eq!(keys, ["outer", "outer/inner", "outer/sibling", "top"]);
        assert_eq!(snap.phases["outer"].count, 1);
    }

    #[test]
    fn out_of_order_drop_restores_the_stack() {
        let prof = Profiler::new("ordering");
        let outer = prof.phase("outer");
        let inner = prof.phase("inner");
        // Dropping the parent first force-closes the child's stack slot…
        drop(outer);
        // …so a new phase is top-level, not a child of a dead parent.
        let after = prof.phase("after");
        assert_eq!(after.path(), Some("after"));
        drop(after);
        // The leaked child still recorded under its original path.
        drop(inner);
        let snap = prof.snapshot();
        assert!(snap.phases.contains_key("outer/inner"));
        assert!(snap.phases.contains_key("after"));
    }

    #[test]
    fn threads_do_not_inherit_the_callers_stack() {
        let prof = Profiler::new("threads");
        let _outer = prof.phase("outer");
        let worker = prof.clone();
        let path = std::thread::spawn(move || {
            let guard = worker.phase("work");
            guard.path().map(str::to_string)
        })
        .join()
        .unwrap();
        // Worker-thread phases key by their own stack: stable names for
        // every --threads value.
        assert_eq!(path.as_deref(), Some("work"));
    }

    #[test]
    fn counters_accumulate_and_derive_rates() {
        let prof = Profiler::new("counters");
        prof.add("racks", 3);
        prof.add("racks", 5);
        prof.set_rate("speedup_t4", 3.5);
        std::thread::sleep(Duration::from_millis(2));
        let snap = prof.snapshot();
        assert_eq!(snap.counters["racks"], 8);
        assert!(snap.rates["racks_per_sec"] > 0.0);
        assert_eq!(snap.rates["speedup_t4"], 3.5);
        assert!(snap.total_ms > 0.0);
    }

    #[test]
    fn record_takes_the_path_literally() {
        let prof = Profiler::new("record");
        let _outer = prof.phase("outer");
        prof.record("run/t1", Duration::from_millis(7));
        let snap = prof.snapshot();
        // Not nested under `outer`.
        assert!(snap.phases.contains_key("run/t1"));
        assert_eq!(snap.phases["run/t1"].count, 1);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let prof = Profiler::new("roundtrip");
        {
            let _p = prof.phase("sim");
            let _c = prof.phase("admission");
        }
        prof.add("sim_steps", 100);
        prof.set_meta("racks", 4);
        let snap = prof.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }
}

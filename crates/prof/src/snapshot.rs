//! The canonical profile snapshot: what a `--prof-out` file contains, what
//! `BENCH_largescale.json` is, and what `soc-prof diff` compares.
//!
//! The format is a single JSON object with a pinned field set (see
//! [`Snapshot::to_json`]); maps are emitted in sorted key order so two
//! snapshots of the same run shape diff cleanly line by line. `schema`
//! is bumped on incompatible changes; [`Snapshot::from_json`] rejects
//! snapshots from a different major schema so the perf gate fails loudly
//! instead of comparing apples to oranges.

use crate::json::{self, Value};
use crate::phase::PhaseStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Current snapshot schema version.
pub const SCHEMA: u64 = 1;

/// Per-phase timing in snapshot form (milliseconds, f64).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseSnap {
    /// Completed span count.
    pub count: u64,
    /// Total wall time in ms.
    pub total_ms: f64,
    /// Shortest span in ms.
    pub min_ms: f64,
    /// Longest span in ms.
    pub max_ms: f64,
}

impl PhaseSnap {
    /// Mean span length in ms (0 for an empty phase).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms / self.count as f64
        }
    }
}

impl From<&PhaseStats> for PhaseSnap {
    fn from(s: &PhaseStats) -> PhaseSnap {
        PhaseSnap {
            count: s.count,
            total_ms: to_ms(s.total),
            min_ms: to_ms(s.min),
            max_ms: to_ms(s.max),
        }
    }
}

fn to_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One complete profile: phases, counters, derived rates, memory, and
/// free-form metadata describing the run configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Format version ([`SCHEMA`] when produced by this crate).
    pub schema: u64,
    /// Profile name (usually the experiment/binary name).
    pub name: String,
    /// Run configuration: racks, weeks, seed, threads, … (stringly typed
    /// on purpose — metadata is for humans and diff labels, not math).
    pub meta: BTreeMap<String, String>,
    /// Wall time from profiler creation to snapshot, in ms.
    pub total_ms: f64,
    /// Per-phase breakdown keyed by `/`-joined phase path.
    pub phases: BTreeMap<String, PhaseSnap>,
    /// Monotonic work counters (racks, sim_steps, events, …).
    pub counters: BTreeMap<String, u64>,
    /// Derived throughputs and ratios (racks_per_sec, speedup_t4, …).
    pub rates: BTreeMap<String, f64>,
    /// Process peak RSS in bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
    /// Allocations counted by [`crate::CountingAlloc`] (0 when not installed).
    pub alloc_count: u64,
    /// Bytes allocated (same caveat).
    pub alloc_bytes: u64,
}

impl Snapshot {
    /// Serialize to the canonical pretty JSON form (stable key order,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"name\": {},", json::escape(&self.name));
        write_str_map(&mut out, "meta", &self.meta);
        let _ = writeln!(out, "  \"total_ms\": {},", json::fmt_num(self.total_ms));
        out.push_str("  \"phases\": {");
        for (i, (path, p)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"total_ms\": {}, \"min_ms\": {}, \"max_ms\": {}}}",
                json::escape(path),
                p.count,
                json::fmt_num(p.total_ms),
                json::fmt_num(p.min_ms),
                json::fmt_num(p.max_ms),
            );
        }
        if self.phases.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json::escape(name), v);
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"rates\": {");
        for (i, (name, v)) in self.rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json::escape(name), json::fmt_num(*v));
        }
        out.push_str(if self.rates.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let _ = writeln!(out, "  \"peak_rss_bytes\": {},", self.peak_rss_bytes);
        let _ = writeln!(out, "  \"alloc_count\": {},", self.alloc_count);
        let _ = writeln!(out, "  \"alloc_bytes\": {}", self.alloc_bytes);
        out.push_str("}\n");
        out
    }

    /// Parse a snapshot produced by [`Snapshot::to_json`] (or any JSON
    /// document with the same field set).
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = json::parse(text)?;
        let obj = root
            .as_obj()
            .ok_or_else(|| "snapshot root must be an object".to_string())?;
        let schema = get_count(obj, "schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "snapshot schema {schema} is not the supported schema {SCHEMA}; \
                 regenerate the file with this build"
            ));
        }
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| "snapshot is missing `name`".to_string())?
            .to_string();
        let mut snap = Snapshot {
            schema,
            name,
            total_ms: get_num(obj, "total_ms")?,
            peak_rss_bytes: get_count(obj, "peak_rss_bytes").unwrap_or(0),
            alloc_count: get_count(obj, "alloc_count").unwrap_or(0),
            alloc_bytes: get_count(obj, "alloc_bytes").unwrap_or(0),
            ..Snapshot::default()
        };
        if let Some(meta) = obj.get("meta").and_then(Value::as_obj) {
            for (k, v) in meta {
                if let Some(s) = v.as_str() {
                    snap.meta.insert(k.clone(), s.to_string());
                }
            }
        }
        if let Some(counters) = obj.get("counters").and_then(Value::as_obj) {
            for (k, v) in counters {
                let n = v
                    .as_num()
                    .ok_or_else(|| format!("counter `{k}` is not a number"))?;
                snap.counters.insert(k.clone(), as_u64(n));
            }
        }
        if let Some(rates) = obj.get("rates").and_then(Value::as_obj) {
            for (k, v) in rates {
                let n = v
                    .as_num()
                    .ok_or_else(|| format!("rate `{k}` is not a number"))?;
                snap.rates.insert(k.clone(), n);
            }
        }
        if let Some(phases) = obj.get("phases").and_then(Value::as_obj) {
            for (path, v) in phases {
                let p = v
                    .as_obj()
                    .ok_or_else(|| format!("phase `{path}` is not an object"))?;
                snap.phases.insert(
                    path.clone(),
                    PhaseSnap {
                        count: get_count(p, "count")?,
                        total_ms: get_num(p, "total_ms")?,
                        min_ms: get_num(p, "min_ms").unwrap_or(0.0),
                        max_ms: get_num(p, "max_ms").unwrap_or(0.0),
                    },
                );
            }
        }
        Ok(snap)
    }

    /// Render a human-readable summary (what `--prof` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== profile: {} ==", self.name);
        let _ = writeln!(
            out,
            "total {:.1} ms | peak rss {} | allocs {} ({})",
            self.total_ms,
            fmt_bytes(self.peak_rss_bytes),
            self.alloc_count,
            fmt_bytes(self.alloc_bytes),
        );
        if !self.meta.is_empty() {
            let pairs: Vec<String> = self.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "config: {}", pairs.join(" "));
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "phases:");
            let width = self.phases.keys().map(|p| p.len()).max().unwrap_or(0);
            for (path, p) in &self.phases {
                let _ = writeln!(
                    out,
                    "  {path:<width$}  {:>8.1} ms  x{:<8} mean {:.3} ms",
                    p.total_ms,
                    p.count,
                    p.mean_ms(),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            let width = self.counters.keys().map(|c| c.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.rates.is_empty() {
            let _ = writeln!(out, "rates:");
            let width = self.rates.keys().map(|r| r.len()).max().unwrap_or(0);
            for (name, v) in &self.rates {
                let _ = writeln!(out, "  {name:<width$}  {v:.3}");
            }
        }
        out
    }
}

fn write_str_map(out: &mut String, key: &str, map: &BTreeMap<String, String>) {
    let _ = write!(out, "  {}: {{", json::escape(key));
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", json::escape(k), json::escape(v));
    }
    out.push_str(if map.is_empty() { "},\n" } else { "\n  },\n" });
}

fn get_num(obj: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("snapshot is missing numeric `{key}`"))
}

fn get_count(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    get_num(obj, key).map(as_u64)
}

/// Clamp a parsed JSON number to a count.
fn as_u64(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        v.round() as u64
    } else {
        0
    }
}

/// Human-scale byte formatting (1 decimal, binary units).
fn fmt_bytes(bytes: u64) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot {
            schema: SCHEMA,
            name: "unit".into(),
            total_ms: 123.456789,
            peak_rss_bytes: 5 << 20,
            alloc_count: 42,
            alloc_bytes: 1 << 16,
            ..Snapshot::default()
        };
        s.meta.insert("racks".into(), "8".into());
        s.meta.insert("seed".into(), "42".into());
        s.counters.insert("sim_steps".into(), 1344);
        s.rates.insert("racks_per_sec".into(), 12.5);
        s.phases.insert(
            "sim".into(),
            PhaseSnap {
                count: 8,
                total_ms: 100.25,
                min_ms: 10.0,
                max_ms: 20.5,
            },
        );
        s.phases.insert(
            "sim/admission".into(),
            PhaseSnap {
                count: 800,
                total_ms: 60.125,
                min_ms: 0.05,
                max_ms: 0.3,
            },
        );
        s
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let parsed = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = Snapshot {
            schema: SCHEMA,
            name: "empty".into(),
            ..Snapshot::default()
        };
        let parsed = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn serialization_is_stable() {
        assert_eq!(sample().to_json(), sample().to_json());
        // Canonical form ends with a newline and starts as an object.
        let text = sample().to_json();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn rejects_wrong_schema() {
        let text = sample()
            .to_json()
            .replace("\"schema\": 1", "\"schema\": 99");
        let err = Snapshot::from_json(&text).unwrap_err();
        assert!(err.contains("schema 99"), "unexpected error: {err}");
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("[1,2]").is_err());
        assert!(Snapshot::from_json("{\"schema\": 1}").is_err());
    }

    #[test]
    fn render_mentions_phases_and_counters() {
        let text = sample().render();
        assert!(text.contains("sim/admission"));
        assert!(text.contains("sim_steps"));
        assert!(text.contains("racks_per_sec"));
    }

    #[test]
    fn bytes_format() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(5 << 20), "5.0 MiB");
    }
}

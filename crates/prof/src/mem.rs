//! Memory observability: peak-RSS sampling and allocation counting.
//!
//! * [`peak_rss_bytes`] reads the process high-water mark from
//!   `/proc/self/status` (`VmHWM`). On platforms without procfs it returns
//!   0 — snapshots stay well-formed, the field is just absent information.
//! * [`CountingAlloc`] is an opt-in global allocator that counts
//!   allocations and allocated bytes into process-wide atomics. Bench
//!   binaries install it with one line:
//!
//!   ```ignore
//!   #[global_allocator]
//!   static ALLOC: soc_prof::CountingAlloc = soc_prof::CountingAlloc;
//!   ```
//!
//!   When it is not installed, [`alloc_counts`] reads `(0, 0)` and the
//!   snapshot records zeros. Counts are totals since process start, not
//!   live bytes; for a bench the interesting figure is allocations per
//!   phase of work, which the caller derives by sampling before/after.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Peak resident-set size of this process in bytes (0 if unavailable).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total `(allocations, bytes)` served by [`CountingAlloc`] since process
/// start. Both are 0 unless a binary installed the allocator.
pub fn alloc_counts() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// A [`System`]-delegating allocator that counts allocations.
///
/// Pure pass-through plus two relaxed atomic increments per allocation;
/// the overhead is low enough to leave installed in every bench binary.
pub struct CountingAlloc;

// The one unsafe block in the workspace: `GlobalAlloc` is an unsafe trait
// by definition. Every method delegates verbatim to `System`, inheriting
// its safety contract; the only added behaviour is relaxed counter bumps.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            // A running test binary has touched at least a megabyte.
            assert!(rss > 1 << 20, "VmHWM parsed as {rss} bytes");
        }
    }

    #[test]
    fn alloc_counts_read_without_installation() {
        // The test binary does not install CountingAlloc; the counters are
        // simply zero (or whatever another test of this process recorded).
        let (count, bytes) = alloc_counts();
        assert!(count == 0 || bytes > 0 || bytes == 0);
    }
}

//! Threaded rack runtime: one OS thread per Server Overclocking Agent.
//!
//! The paper's platform is distributed: every server runs its sOA locally
//! and decisions stay local even when the gOA is unreachable (§III-Q5,
//! "a decentralized approach ... improves fault tolerance"). The simulation
//! harnesses drive the agents synchronously for determinism; this module is
//! the deployment-shaped runtime — each sOA lives on its own thread behind
//! a message channel, exactly how a per-server daemon would embed the agent.
//!
//! The runtime demonstrates two properties the library guarantees:
//!
//! * agents are `Send` — they can be moved onto worker threads;
//! * all coordination is message-passing (requests, control ticks, budget
//!   pushes, emitted events), so a dead gOA merely stops budget refreshes
//!   while admission keeps working against the last assignment.

use crate::config::SoaConfig;
use crate::messages::{GrantId, OverclockRequest, RejectReason, SoaEvent};
use crate::policy::PolicyKind;
use crate::soa::{ServerOverclockAgent, SoaStats};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use simcore::time::SimTime;
use soc_power::model::PowerModel;
use soc_power::rack::RackSignal;
use soc_power::units::Watts;
use soc_predict::template::PowerTemplate;
use soc_telemetry::{tm_event, Component, Event, LocalSpool, Severity, Telemetry};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Messages accepted by an agent thread.
enum AgentMsg {
    Request {
        now: SimTime,
        request: OverclockRequest,
        reply: Sender<Result<GrantId, RejectReason>>,
    },
    End {
        now: SimTime,
        grant: GrantId,
    },
    Tick {
        now: SimTime,
        measured: Watts,
        signal: Option<RackSignal>,
        /// Causal decision id of the event that raised `signal` (e.g. a rack
        /// monitor's `rack_capping`); `0` when unknown. Rides the channel so
        /// the sOA's corrective events can chain back across threads.
        signal_cause: u64,
    },
    SetBudget(Watts),
    SetTemplate(Box<PowerTemplate>),
    /// Fault injection: the agent process restarts, losing volatile state;
    /// revocation events flow out through the regular event stream.
    Restart {
        now: SimTime,
    },
    /// Barrier: the thread replies once every earlier message is processed.
    Sync(Sender<()>),
    Shutdown,
}

/// A rack of sOA threads plus an event stream.
///
/// ```
/// use smartoclock::runtime::RackRuntime;
/// use smartoclock::messages::OverclockRequest;
/// use smartoclock::policy::PolicyKind;
/// use smartoclock::config::SoaConfig;
/// use soc_power::model::PowerModel;
/// use soc_power::units::{MegaHertz, Watts};
/// use simcore::time::SimTime;
///
/// let mut rack = RackRuntime::start(
///     4,
///     PowerModel::reference_server(),
///     SoaConfig::reference(),
///     PolicyKind::SmartOClock,
/// );
/// rack.set_budget(0, Watts::new(400.0));
/// let req = OverclockRequest::metrics_based("vm", 4, MegaHertz::new(4000));
/// let grant = rack.request(0, SimTime::ZERO, req).expect("fits under 400W");
/// rack.end(0, SimTime::from_secs(60), grant);
/// rack.shutdown();
/// ```
pub struct RackRuntime {
    senders: Vec<Sender<AgentMsg>>,
    handles: Vec<JoinHandle<()>>,
    events_rx: Receiver<(SimTime, usize, SoaEvent)>,
    stats: Arc<Mutex<Vec<SoaStats>>>,
    telemetry: Telemetry,
}

impl RackRuntime {
    /// Spawn `servers` agent threads with telemetry disabled.
    ///
    /// # Panics
    /// Panics if `servers == 0` or the configuration is invalid.
    pub fn start(
        servers: usize,
        model: PowerModel,
        config: SoaConfig,
        policy: PolicyKind,
    ) -> RackRuntime {
        RackRuntime::start_with_telemetry(servers, model, config, policy, Telemetry::disabled())
    }

    /// Spawn `servers` agent threads sharing `telemetry`.
    ///
    /// Each thread buffers its own lifecycle records in a
    /// [`LocalSpool`] (flushed at barriers and shutdown); the agents
    /// themselves emit decision events through the shared handle.
    ///
    /// # Panics
    /// Panics if `servers == 0` or the configuration is invalid.
    pub fn start_with_telemetry(
        servers: usize,
        model: PowerModel,
        config: SoaConfig,
        policy: PolicyKind,
        telemetry: Telemetry,
    ) -> RackRuntime {
        assert!(servers > 0, "need at least one server");
        let (events_tx, events_rx) = unbounded();
        let stats = Arc::new(Mutex::new(vec![SoaStats::default(); servers]));
        let mut senders = Vec::with_capacity(servers);
        let mut handles = Vec::with_capacity(servers);
        for index in 0..servers {
            let (tx, rx) = unbounded::<AgentMsg>();
            let events_tx = events_tx.clone();
            let stats = Arc::clone(&stats);
            let thread_telemetry = telemetry.clone();
            let handle = std::thread::Builder::new()
                .name(format!("soa-{index}"))
                .spawn(move || {
                    let mut agent = ServerOverclockAgent::new(model, config, policy);
                    agent.set_telemetry(thread_telemetry.clone(), index);
                    let mut spool = LocalSpool::new(thread_telemetry);
                    let mut last_tick = SimTime::ZERO;
                    spool.push(
                        Event::new(last_tick, Component::Rack, Severity::Debug, "agent_start")
                            .field("server", index),
                    );
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            AgentMsg::Request {
                                now,
                                request,
                                reply,
                            } => {
                                let _ = reply.send(agent.request_overclock(now, request));
                            }
                            AgentMsg::End { now, grant } => {
                                let _ = agent.end_overclock(now, grant);
                            }
                            AgentMsg::Tick {
                                now,
                                measured,
                                signal,
                                signal_cause,
                            } => {
                                last_tick = now;
                                for event in
                                    agent.control_tick_traced(now, measured, signal, signal_cause)
                                {
                                    let _ = events_tx.send((now, index, event));
                                }
                                stats.lock()[index] = agent.stats();
                            }
                            AgentMsg::SetBudget(b) => agent.set_power_budget(b),
                            AgentMsg::SetTemplate(t) => agent.set_power_template(*t),
                            AgentMsg::Restart { now } => {
                                last_tick = now;
                                for event in agent.restart(now) {
                                    let _ = events_tx.send((now, index, event));
                                }
                                stats.lock()[index] = agent.stats();
                            }
                            AgentMsg::Sync(reply) => {
                                spool.flush();
                                let _ = reply.send(());
                            }
                            AgentMsg::Shutdown => break,
                        }
                    }
                    spool.push(
                        Event::new(last_tick, Component::Rack, Severity::Debug, "agent_stop")
                            .field("server", index),
                    );
                })
                .expect("spawn agent thread");
            senders.push(tx);
            handles.push(handle);
        }
        RackRuntime {
            senders,
            handles,
            events_rx,
            stats,
            telemetry,
        }
    }

    /// Number of agent threads.
    pub fn servers(&self) -> usize {
        self.senders.len()
    }

    /// Submit an overclocking request to server `index` and wait for the
    /// admission decision.
    ///
    /// # Errors
    /// Returns the agent's [`RejectReason`] when admission fails.
    ///
    /// # Panics
    /// Panics if `index` is out of range or the agent thread is gone.
    pub fn request(
        &self,
        index: usize,
        now: SimTime,
        request: OverclockRequest,
    ) -> Result<GrantId, RejectReason> {
        let (reply_tx, reply_rx) = bounded(1);
        self.senders[index]
            .send(AgentMsg::Request {
                now,
                request,
                reply: reply_tx,
            })
            .expect("agent thread is alive");
        reply_rx.recv().expect("agent replies to requests")
    }

    /// Release a grant on server `index` (fire-and-forget).
    ///
    /// # Panics
    /// Panics if `index` is out of range or the agent thread is gone.
    pub fn end(&self, index: usize, now: SimTime, grant: GrantId) {
        self.senders[index]
            .send(AgentMsg::End { now, grant })
            .expect("agent thread is alive");
    }

    /// Push a budget assignment (the gOA's role).
    ///
    /// # Panics
    /// Panics if `index` is out of range or the agent thread is gone.
    pub fn set_budget(&self, index: usize, budget: Watts) {
        self.senders[index]
            .send(AgentMsg::SetBudget(budget))
            .expect("agent thread is alive");
    }

    /// Inject an sOA restart on server `index` (fault injection): the agent
    /// loses its volatile state and re-joins conservatively — its grants are
    /// revoked (visible via [`drain_events`](Self::drain_events)) and
    /// admission denies everything until a fresh budget arrives via
    /// [`set_budget`](Self::set_budget).
    ///
    /// # Panics
    /// Panics if `index` is out of range or the agent thread is gone.
    pub fn restart(&self, index: usize, now: SimTime) {
        self.senders[index]
            .send(AgentMsg::Restart { now })
            .expect("agent thread is alive");
    }

    /// Push a power template to server `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range or the agent thread is gone.
    pub fn set_template(&self, index: usize, template: PowerTemplate) {
        self.senders[index]
            .send(AgentMsg::SetTemplate(Box::new(template)))
            .expect("agent thread is alive");
    }

    /// Broadcast one control tick with per-server measured draws.
    ///
    /// # Panics
    /// Panics if `measured.len()` differs from the server count.
    pub fn tick_all(&self, now: SimTime, measured: &[Watts], signal: Option<RackSignal>) {
        self.tick_all_caused(now, measured, signal, 0);
    }

    /// [`tick_all`](Self::tick_all) carrying the causal decision id of the
    /// event that raised `signal` (e.g. the rack monitor's `rack_capping`),
    /// so agent-side corrective events (`capping_reset`, `warning_retreat`)
    /// chain back to it across the channel. Pass `0` when there is no cause.
    ///
    /// # Panics
    /// Panics if `measured.len()` differs from the server count.
    pub fn tick_all_caused(
        &self,
        now: SimTime,
        measured: &[Watts],
        signal: Option<RackSignal>,
        signal_cause: u64,
    ) {
        assert_eq!(measured.len(), self.servers(), "one measurement per server");
        tm_event!(self.telemetry, now, Component::Rack, Severity::Debug, "tick_all",
            "servers" => self.servers(),
            "signal" => signal.is_some(),
            "decision_id" => self.telemetry.next_id(),
            "cause_id" => signal_cause);
        for (tx, &m) in self.senders.iter().zip(measured) {
            tx.send(AgentMsg::Tick {
                now,
                measured: m,
                signal,
                signal_cause,
            })
            .expect("agent thread is alive");
        }
    }

    /// Wait until every agent thread has processed all messages sent so far
    /// (and flushed its telemetry spool). After `sync`, `drain_events`
    /// returns the complete, deterministic event set of earlier ticks.
    ///
    /// # Panics
    /// Panics if an agent thread is gone.
    pub fn sync(&self) {
        let replies: Vec<Receiver<()>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(AgentMsg::Sync(reply_tx))
                    .expect("agent thread is alive");
                reply_rx
            })
            .collect();
        for rx in replies {
            rx.recv().expect("agent answers sync barrier");
        }
    }

    /// Drain all events emitted since the last drain, in deterministic
    /// `(SimTime, server index)` order. Does not block; call
    /// [`sync`](Self::sync) first to guarantee all in-flight ticks are
    /// included.
    ///
    /// Events from the same server at the same instant keep their emission
    /// order (stable sort), so per-grant sequences stay intact.
    pub fn drain_events(&self) -> Vec<(usize, SoaEvent)> {
        let mut raw: Vec<(SimTime, usize, SoaEvent)> = self.events_rx.try_iter().collect();
        raw.sort_by_key(|(time, server, _)| (*time, *server));
        raw.into_iter()
            .map(|(_, server, event)| (server, event))
            .collect()
    }

    /// Snapshot of per-agent statistics (updated at each tick).
    pub fn stats(&self) -> Vec<SoaStats> {
        self.stats.lock().clone()
    }

    /// Stop all agent threads and wait for them to exit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(AgentMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RackRuntime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;
    use soc_power::units::MegaHertz;

    fn runtime(n: usize) -> RackRuntime {
        let rt = RackRuntime::start(
            n,
            PowerModel::reference_server(),
            SoaConfig::reference(),
            PolicyKind::SmartOClock,
        );
        for i in 0..n {
            rt.set_budget(i, Watts::new(450.0));
        }
        rt
    }

    fn oc_request() -> OverclockRequest {
        OverclockRequest::metrics_based("vm", 8, MegaHertz::new(4000))
    }

    #[test]
    fn request_roundtrip_through_thread() {
        let rt = runtime(2);
        let grant = rt
            .request(0, SimTime::ZERO, oc_request())
            .expect("headroom");
        rt.end(0, SimTime::from_secs(10), grant);
        rt.shutdown();
    }

    #[test]
    fn ticks_emit_frequency_events() {
        let rt = runtime(1);
        let _ = rt.request(0, SimTime::ZERO, oc_request()).unwrap();
        for s in 1..=5u64 {
            rt.tick_all(SimTime::from_secs(s), &[Watts::new(300.0)], None);
        }
        rt.sync();
        let events = rt.drain_events();
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, SoaEvent::SetFrequency { .. })),
            "feedback loop should ramp the grant: {events:?}"
        );
        rt.shutdown();
    }

    #[test]
    fn stats_snapshot_reflects_requests() {
        let rt = runtime(3);
        let _ = rt.request(1, SimTime::ZERO, oc_request()).unwrap();
        rt.tick_all(SimTime::from_secs(1), &[Watts::new(200.0); 3], None);
        rt.sync();
        let stats = rt.stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[1].requests, 1);
        assert_eq!(stats[1].granted, 1);
        assert_eq!(stats[0].requests, 0);
        rt.shutdown();
    }

    #[test]
    fn agents_work_without_budget_refreshes() {
        // Decentralization: no gOA messages after startup — admission still
        // works against the last assignment.
        let rt = runtime(1);
        for k in 0..5 {
            let t = SimTime::ZERO + SimDuration::from_minutes(k);
            let grant = rt
                .request(0, t, oc_request())
                .expect("local decisions keep working");
            rt.end(0, t + SimDuration::from_secs(30), grant);
        }
        rt.shutdown();
    }

    #[test]
    fn drop_joins_threads() {
        let rt = runtime(4);
        drop(rt); // must not hang or panic
    }

    #[test]
    fn rejects_propagate_through_channel() {
        let rt = RackRuntime::start(
            1,
            PowerModel::reference_server(),
            SoaConfig::reference(),
            PolicyKind::SmartOClock,
        );
        rt.set_budget(0, Watts::new(10.0)); // far below any regular draw
        let err = rt.request(0, SimTime::ZERO, oc_request()).unwrap_err();
        assert_eq!(err, RejectReason::PowerBudget);
        rt.shutdown();
    }

    #[test]
    fn drained_events_are_ordered_by_time_then_server() {
        let rt = runtime(4);
        for i in 0..4 {
            let _ = rt.request(i, SimTime::ZERO, oc_request()).unwrap();
        }
        // Several ticks: every server emits SetFrequency events each tick.
        for s in 1..=3u64 {
            rt.tick_all(SimTime::from_secs(s), &[Watts::new(300.0); 4], None);
        }
        rt.sync();
        let events = rt.drain_events();
        assert!(!events.is_empty());
        // Reconstruct the (time, server) keys: each tick's batch must come
        // out grouped by tick and, within a tick, by ascending server index.
        let servers: Vec<usize> = events.iter().map(|(s, _)| *s).collect();
        let mut per_tick = servers.chunks(4);
        for chunk in &mut per_tick {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            assert_eq!(
                chunk,
                &sorted[..],
                "within one tick, servers ascend: {servers:?}"
            );
        }
        rt.shutdown();
    }

    #[test]
    fn restart_revokes_grants_and_rejoins_conservatively() {
        let rt = runtime(1);
        let grant = rt
            .request(0, SimTime::ZERO, oc_request())
            .expect("headroom before the fault");
        // The process restarts: volatile state is gone.
        rt.restart(0, SimTime::from_secs(30));
        rt.sync();
        let events = rt.drain_events();
        assert!(
            events.iter().any(|(_, e)| matches!(
                e,
                SoaEvent::GrantEnded {
                    grant: g,
                    reason: crate::messages::GrantEndReason::AgentRestart,
                } if *g == grant
            )),
            "restart must revoke the live grant: {events:?}"
        );
        // Conservative re-join: no budget yet, so admission denies.
        let err = rt
            .request(0, SimTime::from_secs(31), oc_request())
            .unwrap_err();
        assert_eq!(err, RejectReason::PowerBudget);
        // A fresh gOA assignment restores service.
        rt.set_budget(0, Watts::new(450.0));
        let _ = rt
            .request(0, SimTime::from_secs(32), oc_request())
            .expect("fresh budget restores admission");
        rt.shutdown();
    }

    #[test]
    fn runtime_threads_emit_telemetry() {
        let (tm, sink) = Telemetry::memory();
        let rt = RackRuntime::start_with_telemetry(
            2,
            PowerModel::reference_server(),
            SoaConfig::reference(),
            PolicyKind::SmartOClock,
            tm,
        );
        rt.set_budget(0, Watts::new(450.0));
        rt.set_budget(1, Watts::new(450.0));
        let _ = rt.request(0, SimTime::ZERO, oc_request()).unwrap();
        rt.tick_all(SimTime::from_secs(1), &[Watts::new(300.0); 2], None);
        rt.sync();
        assert_eq!(
            sink.named("oc_grant").len(),
            1,
            "sOA emits through the shared handle"
        );
        assert_eq!(sink.named("tick_all").len(), 1);
        assert_eq!(
            sink.named("agent_start").len(),
            2,
            "spools flush at the sync barrier"
        );
        rt.shutdown();
    }
}

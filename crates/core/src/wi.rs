//! Workload Intelligence (WI) agents.
//!
//! "Applications can use metrics (e.g., latency, CPU utilization) or
//! schedule-based policies to trigger overclocking, and the decisions can be
//! made based on instance- and deployment-level monitoring" (paper §I,
//! §IV-A). Local agents collect per-VM metrics; the global agent aggregates
//! them per service, issues start/stop-overclocking signals, and takes
//! corrective action (scale-out) when overclocking is rejected or predicted
//! to run out.

use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use soc_telemetry::{tm_event, Component, Severity, Telemetry};

/// Which metric a metrics-based trigger watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Tail (P99) latency in milliseconds.
    TailLatencyMs,
    /// Mean CPU utilization in `[0, 1]`.
    CpuUtilization,
    /// Queue length (requests waiting).
    QueueLength,
}

/// Threshold pair for a metrics-based trigger. Overclocking starts when the
/// aggregated metric exceeds `scale_up` and stops below `scale_down`
/// (hysteresis avoids dithering, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricTrigger {
    /// The watched metric.
    pub kind: MetricKind,
    /// Start-overclocking threshold.
    pub scale_up: f64,
    /// Stop-overclocking threshold (must be below `scale_up`).
    pub scale_down: f64,
}

impl MetricTrigger {
    /// Build a trigger.
    ///
    /// # Panics
    /// Panics if `scale_down >= scale_up`.
    pub fn new(kind: MetricKind, scale_up: f64, scale_down: f64) -> MetricTrigger {
        assert!(
            scale_down < scale_up,
            "scale_down must be below scale_up (hysteresis)"
        );
        MetricTrigger {
            kind,
            scale_up,
            scale_down,
        }
    }
}

/// A daily schedule window for schedule-based overclocking (e.g. "9-10 AM
/// local time", §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleWindow {
    /// Window start, hours from midnight.
    pub start_hour: f64,
    /// Window end, hours from midnight (must exceed `start_hour`).
    pub end_hour: f64,
    /// Whether the window applies on weekends too.
    pub include_weekends: bool,
}

impl ScheduleWindow {
    /// Build a window.
    ///
    /// # Panics
    /// Panics unless `0 <= start < end <= 24`.
    pub fn new(start_hour: f64, end_hour: f64, include_weekends: bool) -> ScheduleWindow {
        assert!(
            (0.0..24.0).contains(&start_hour) && start_hour < end_hour && end_hour <= 24.0,
            "invalid schedule window [{start_hour}, {end_hour})"
        );
        ScheduleWindow {
            start_hour,
            end_hour,
            include_weekends,
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        if !self.include_weekends && t.weekday().is_weekend() {
            return false;
        }
        let h = t.time_of_day().as_hours_f64();
        h >= self.start_hour && h < self.end_hour
    }
}

/// Per-service overclocking policy configured by the workload owner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverclockPolicy {
    /// Metrics-based trigger, if any.
    pub trigger: Option<MetricTrigger>,
    /// Schedule-based windows, if any (combinable with a trigger, §IV-A).
    pub schedule: Vec<ScheduleWindow>,
    /// Corrective action: create `scale_out_step` new VMs once
    /// `rejections_before_scale_out` overclocking attempts were rejected.
    pub rejections_before_scale_out: usize,
    /// How many VMs a corrective scale-out adds.
    pub scale_out_step: usize,
    /// Deployment-level utilization goal (WebConf-style): when set,
    /// overclocking is suppressed while the deployment-level mean CPU
    /// utilization meets the goal, regardless of hot individual VMs (Fig. 4).
    pub deployment_goal: Option<f64>,
}

impl OverclockPolicy {
    /// A latency-triggered policy: overclock when aggregated P99 exceeds
    /// `up_ms`, stop below `down_ms`.
    pub fn latency(up_ms: f64, down_ms: f64) -> OverclockPolicy {
        OverclockPolicy {
            trigger: Some(MetricTrigger::new(
                MetricKind::TailLatencyMs,
                up_ms,
                down_ms,
            )),
            schedule: Vec::new(),
            rejections_before_scale_out: 4,
            scale_out_step: 1,
            deployment_goal: None,
        }
    }

    /// A schedule-only policy.
    pub fn scheduled(windows: Vec<ScheduleWindow>) -> OverclockPolicy {
        OverclockPolicy {
            trigger: None,
            schedule: windows,
            rejections_before_scale_out: 2,
            scale_out_step: 1,
            deployment_goal: None,
        }
    }
}

/// One VM's metric snapshot, as reported by its local WI agent.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VmMetrics {
    /// P99 latency over the last window, ms (NaN when idle).
    pub tail_latency_ms: f64,
    /// Mean CPU utilization over the last window.
    pub cpu_utilization: f64,
    /// Current queue length.
    pub queue_length: f64,
}

/// Local WI agent: smooths raw per-VM metrics with an EWMA before they reach
/// the global agent (jittery single-window tails would cause dithering).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalWiAgent {
    alpha: f64,
    smoothed: Option<VmMetrics>,
}

impl LocalWiAgent {
    /// Create an agent with EWMA factor `alpha` (weight of the newest
    /// sample).
    ///
    /// # Panics
    /// Panics unless `alpha` is in `(0, 1]`.
    pub fn new(alpha: f64) -> LocalWiAgent {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        LocalWiAgent {
            alpha,
            smoothed: None,
        }
    }

    /// Feed one raw window observation; returns the smoothed metrics to
    /// forward to the global agent.
    pub fn observe(&mut self, raw: VmMetrics) -> VmMetrics {
        let s = match self.smoothed {
            None => raw,
            Some(prev) => VmMetrics {
                tail_latency_ms: ewma(self.alpha, prev.tail_latency_ms, raw.tail_latency_ms),
                cpu_utilization: ewma(self.alpha, prev.cpu_utilization, raw.cpu_utilization),
                queue_length: ewma(self.alpha, prev.queue_length, raw.queue_length),
            },
        };
        self.smoothed = Some(s);
        s
    }

    /// The current smoothed metrics, if any observation arrived yet.
    pub fn current(&self) -> Option<VmMetrics> {
        self.smoothed
    }

    /// [`observe`](Self::observe) plus a `wi_observe` telemetry record
    /// labelled with the VM index (high-volume, `Debug` severity).
    pub fn observe_traced(
        &mut self,
        now: SimTime,
        raw: VmMetrics,
        telemetry: &Telemetry,
        vm: usize,
    ) -> VmMetrics {
        let smoothed = self.observe(raw);
        tm_event!(telemetry, now, Component::Wi, Severity::Debug, "wi_observe",
            "vm" => vm,
            "latency_ms" => smoothed.tail_latency_ms,
            "util" => smoothed.cpu_utilization,
            "queue" => smoothed.queue_length);
        smoothed
    }
}

fn ewma(alpha: f64, prev: f64, new: f64) -> f64 {
    if new.is_nan() {
        return prev;
    }
    if prev.is_nan() {
        return new;
    }
    alpha * new + (1.0 - alpha) * prev
}

/// What the global agent wants the platform to do this round.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WiDecision {
    /// Whether the service should be overclocked right now.
    pub overclock: bool,
    /// Additional VM instances to create (corrective / proactive scale-out).
    pub scale_out: usize,
    /// Whether load has dropped enough to retire an instance.
    pub scale_in: bool,
}

/// Global WI agent for one service deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalWiAgent {
    policy: OverclockPolicy,
    latest: Vec<VmMetrics>,
    overclocking: bool,
    rejections: usize,
    pending_scale_out: usize,
    /// Causal decision id of the `wi_oc_start` that opened the current
    /// overclocking episode (`0` when not overclocking or telemetry is off).
    /// Tracing-only: never feeds back into [`decide`](Self::decide).
    #[serde(default)]
    current_decision: u64,
    /// Causal decision id of the event (denial, exhaustion warning) that made
    /// the next `wi_scale_out` necessary; `0` when unknown.
    #[serde(default)]
    scale_out_cause: u64,
}

impl GlobalWiAgent {
    /// Create an agent with the given per-service policy.
    pub fn new(policy: OverclockPolicy) -> GlobalWiAgent {
        GlobalWiAgent {
            policy,
            latest: Vec::new(),
            overclocking: false,
            rejections: 0,
            pending_scale_out: 0,
            current_decision: 0,
            scale_out_cause: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &OverclockPolicy {
        &self.policy
    }

    /// Replace all VM metric reports for this round (index = VM).
    pub fn report(&mut self, metrics: Vec<VmMetrics>) {
        self.latest = metrics;
    }

    /// A local agent reported that its overclocking request was rejected.
    pub fn notify_rejection(&mut self) {
        self.notify_rejection_with_cause(0);
    }

    /// [`notify_rejection`](Self::notify_rejection), recording the causal
    /// decision id of the denial (the sOA's `oc_deny`) so that a resulting
    /// `wi_scale_out` can point back at it.
    pub fn notify_rejection_with_cause(&mut self, cause: u64) {
        self.rejections += 1;
        if self.rejections >= self.policy.rejections_before_scale_out {
            self.pending_scale_out += self.policy.scale_out_step;
            self.rejections = 0;
            self.scale_out_cause = cause;
        }
    }

    /// The sOA predicted resource exhaustion: proactively scale out so the
    /// replacement capacity is ready before overclocking stops (§IV-D).
    pub fn notify_exhaustion(&mut self) {
        self.notify_exhaustion_with_cause(0);
    }

    /// [`notify_exhaustion`](Self::notify_exhaustion), recording the causal
    /// decision id of the `exhaustion_warning` that prompted the scale-out.
    pub fn notify_exhaustion_with_cause(&mut self, cause: u64) {
        self.pending_scale_out += self.policy.scale_out_step;
        self.scale_out_cause = cause;
    }

    /// Aggregate the deployment-level value of a metric (max for latency and
    /// queue — the tail is what violates SLOs — mean for utilization).
    fn aggregate(&self, kind: MetricKind) -> Option<f64> {
        if self.latest.is_empty() {
            return None;
        }
        let vals = self.latest.iter();
        Some(match kind {
            MetricKind::TailLatencyMs => vals
                .map(|m| m.tail_latency_ms)
                .filter(|v| !v.is_nan())
                .fold(f64::NEG_INFINITY, f64::max),
            MetricKind::CpuUtilization => {
                self.latest.iter().map(|m| m.cpu_utilization).sum::<f64>()
                    / self.latest.len() as f64
            }
            MetricKind::QueueLength => vals
                .map(|m| m.queue_length)
                .fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Compute this round's decision.
    pub fn decide(&mut self, now: SimTime) -> WiDecision {
        let mut want = false;
        // Schedule-based component.
        if self.policy.schedule.iter().any(|w| w.contains(now)) {
            want = true;
        }
        // Metrics-based component with hysteresis.
        if let Some(trigger) = self.policy.trigger {
            if let Some(value) = self.aggregate(trigger.kind) {
                if value.is_finite() {
                    if value > trigger.scale_up {
                        want = true;
                    } else if value >= trigger.scale_down && self.overclocking {
                        // Inside the hysteresis band: keep the current state.
                        want = true;
                    }
                    // Below the scale-down threshold `want` is left as the
                    // schedule set it: explicit stop only if the schedule
                    // does not demand overclocking.
                }
            }
        }
        // Deployment-level goal suppresses unnecessary overclocking (Fig. 4).
        if let Some(goal) = self.policy.deployment_goal {
            if let Some(mean_util) = self.aggregate(MetricKind::CpuUtilization) {
                if mean_util <= goal {
                    want = false;
                }
            }
        }
        self.overclocking = want;
        let scale_out = std::mem::take(&mut self.pending_scale_out);
        // Scale-in hint: the metric has dropped below the scale-down
        // threshold, so the extra capacity added during the spike can retire.
        let scale_in = !want
            && self
                .policy
                .trigger
                .and_then(|t| self.aggregate(t.kind).map(|v| v < t.scale_down))
                .unwrap_or(false);
        WiDecision {
            overclock: want,
            scale_out,
            scale_in,
        }
    }

    /// [`decide`](Self::decide) plus telemetry: emits `wi_oc_start` /
    /// `wi_oc_stop` on trigger transitions and `wi_scale_out` / `wi_scale_in`
    /// on corrective actions, labelled with the service index.
    pub fn decide_traced(
        &mut self,
        now: SimTime,
        telemetry: &Telemetry,
        service: usize,
    ) -> WiDecision {
        let was_overclocking = self.overclocking;
        let decision = self.decide(now);
        if telemetry.is_enabled() {
            if decision.overclock != was_overclocking {
                if decision.overclock {
                    self.current_decision = telemetry.next_id();
                    tm_event!(telemetry, now, Component::Wi, Severity::Info, "wi_oc_start",
                        "service" => service,
                        "decision_id" => self.current_decision);
                } else {
                    tm_event!(telemetry, now, Component::Wi, Severity::Info, "wi_oc_stop",
                        "service" => service,
                        "decision_id" => telemetry.next_id(),
                        "cause_id" => self.current_decision);
                    self.current_decision = 0;
                }
            }
            if decision.scale_out > 0 {
                tm_event!(telemetry, now, Component::Wi, Severity::Info, "wi_scale_out",
                    "service" => service,
                    "instances" => decision.scale_out,
                    "decision_id" => telemetry.next_id(),
                    "cause_id" => std::mem::take(&mut self.scale_out_cause));
                telemetry.metrics(|m| {
                    m.inc_counter_by(
                        "wi_scale_outs",
                        &[("service", service.into())],
                        decision.scale_out as u64,
                    );
                });
            }
            if decision.scale_in {
                tm_event!(telemetry, now, Component::Wi, Severity::Debug, "wi_scale_in",
                    "service" => service,
                    "decision_id" => telemetry.next_id());
            }
        }
        decision
    }

    /// Whether the agent currently wants the service overclocked.
    pub fn is_overclocking(&self) -> bool {
        self.overclocking
    }

    /// Causal decision id of the `wi_oc_start` that opened the current
    /// overclocking episode; `0` when idle or when telemetry is disabled.
    /// Attach it to [`OverclockRequest::caused_by`] so downstream
    /// `oc_grant`/`oc_deny` events chain back to the WI trigger.
    ///
    /// [`OverclockRequest::caused_by`]: crate::messages::OverclockRequest::caused_by
    pub fn current_decision(&self) -> u64 {
        self.current_decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn metrics(latency: f64, util: f64) -> VmMetrics {
        VmMetrics {
            tail_latency_ms: latency,
            cpu_utilization: util,
            queue_length: 0.0,
        }
    }

    #[test]
    fn latency_trigger_with_hysteresis() {
        let mut agent = GlobalWiAgent::new(OverclockPolicy::latency(100.0, 60.0));
        agent.report(vec![metrics(120.0, 0.5)]);
        assert!(agent.decide(SimTime::ZERO).overclock);
        // Inside the band: stays on.
        agent.report(vec![metrics(80.0, 0.5)]);
        assert!(agent.decide(SimTime::ZERO).overclock);
        // Below scale-down: stops.
        agent.report(vec![metrics(40.0, 0.5)]);
        assert!(!agent.decide(SimTime::ZERO).overclock);
        // Inside the band from below: stays off (no dithering).
        agent.report(vec![metrics(80.0, 0.5)]);
        assert!(!agent.decide(SimTime::ZERO).overclock);
    }

    #[test]
    fn deployment_aggregation_uses_worst_tail() {
        let mut agent = GlobalWiAgent::new(OverclockPolicy::latency(100.0, 60.0));
        agent.report(vec![metrics(30.0, 0.2), metrics(150.0, 0.9)]);
        assert!(
            agent.decide(SimTime::ZERO).overclock,
            "one hot VM trips the service"
        );
    }

    #[test]
    fn schedule_window_fires_on_weekdays() {
        let policy = OverclockPolicy::scheduled(vec![ScheduleWindow::new(9.0, 10.0, false)]);
        let mut agent = GlobalWiAgent::new(policy);
        let mon_930 = SimTime::ZERO + SimDuration::from_hours(9) + SimDuration::from_minutes(30);
        assert!(agent.decide(mon_930).overclock);
        let mon_11 = SimTime::ZERO + SimDuration::from_hours(11);
        assert!(!agent.decide(mon_11).overclock);
        let sat_930 = mon_930 + SimDuration::from_days(5);
        assert!(!agent.decide(sat_930).overclock);
    }

    #[test]
    fn deployment_goal_suppresses_overclocking() {
        // Fig. 4: VM1 at 10%, VM2 at 80% — deployment at 45% meets the 50%
        // goal, so no overclocking even though VM2 is hot.
        let mut policy = OverclockPolicy::latency(0.5, 0.3);
        policy.trigger = Some(MetricTrigger::new(MetricKind::CpuUtilization, 0.7, 0.4));
        policy.deployment_goal = Some(0.5);
        let mut agent = GlobalWiAgent::new(policy);
        agent.report(vec![metrics(f64::NAN, 0.10), metrics(f64::NAN, 0.80)]);
        assert!(!agent.decide(SimTime::ZERO).overclock);
        // Once the deployment itself exceeds the goal, overclocking engages.
        agent.report(vec![metrics(f64::NAN, 0.75), metrics(f64::NAN, 0.80)]);
        assert!(agent.decide(SimTime::ZERO).overclock);
    }

    #[test]
    fn rejections_trigger_corrective_scale_out() {
        let mut agent = GlobalWiAgent::new(OverclockPolicy::latency(100.0, 60.0));
        for _ in 0..3 {
            agent.notify_rejection();
            assert_eq!(agent.decide(SimTime::ZERO).scale_out, 0);
        }
        agent.notify_rejection();
        assert_eq!(agent.decide(SimTime::ZERO).scale_out, 1);
        // The counter resets after acting.
        assert_eq!(agent.decide(SimTime::ZERO).scale_out, 0);
    }

    #[test]
    fn exhaustion_notification_scales_out_proactively() {
        let mut agent = GlobalWiAgent::new(OverclockPolicy::latency(100.0, 60.0));
        agent.notify_exhaustion();
        assert_eq!(agent.decide(SimTime::ZERO).scale_out, 1);
    }

    #[test]
    fn scale_in_hint_when_idle() {
        let mut agent = GlobalWiAgent::new(OverclockPolicy::latency(100.0, 60.0));
        agent.report(vec![metrics(10.0, 0.1)]);
        let d = agent.decide(SimTime::ZERO);
        assert!(!d.overclock);
        assert!(d.scale_in);
    }

    #[test]
    fn local_agent_smooths_spikes() {
        let mut local = LocalWiAgent::new(0.5);
        local.observe(metrics(100.0, 0.5));
        let s = local.observe(metrics(200.0, 0.7));
        assert!((s.tail_latency_ms - 150.0).abs() < 1e-9);
        assert!((s.cpu_utilization - 0.6).abs() < 1e-9);
    }

    #[test]
    fn local_agent_ignores_nan_windows() {
        let mut local = LocalWiAgent::new(0.5);
        local.observe(metrics(100.0, 0.5));
        let s = local.observe(VmMetrics {
            tail_latency_ms: f64::NAN,
            cpu_utilization: 0.5,
            queue_length: 0.0,
        });
        assert_eq!(s.tail_latency_ms, 100.0);
    }

    #[test]
    #[should_panic(expected = "scale_down must be below")]
    fn trigger_validates_hysteresis() {
        let _ = MetricTrigger::new(MetricKind::TailLatencyMs, 50.0, 60.0);
    }

    #[test]
    #[should_panic(expected = "invalid schedule window")]
    fn window_validates_hours() {
        let _ = ScheduleWindow::new(10.0, 9.0, false);
    }
}

//! Types exchanged between the Workload Intelligence agents, the Server
//! Overclocking Agent, and the Global Overclocking Agent.

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use soc_power::units::MegaHertz;
use std::fmt;

/// Identifier of a granted overclocking request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GrantId(pub u64);

impl fmt::Display for GrantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grant{}", self.0)
    }
}

/// An overclocking request submitted by a local WI agent to its sOA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverclockRequest {
    /// Label of the requesting VM (for reporting).
    pub vm: String,
    /// Number of cores to overclock.
    pub cores: usize,
    /// Target frequency.
    pub target: MegaHertz,
    /// Expected utilization of the overclocked cores (worst case for
    /// admission, §IV-D "at a given core frequency and worst-case CPU
    /// utilization").
    pub expected_utilization: f64,
    /// Expected duration; `Some` for schedule-based requests (which reserve
    /// lifetime budget), `None` for open-ended metrics-based requests.
    pub duration: Option<SimDuration>,
    /// Priority: higher is more important; scheduled VMs typically outrank
    /// unscheduled ones (§IV-D).
    pub priority: u32,
    /// Causal decision id of the control-plane decision that triggered this
    /// request (e.g. the WI agent's `wi_oc_start`). `0` means "no cause";
    /// ids are allocated by `soc_telemetry::Telemetry::next_id`.
    #[serde(default)]
    pub cause: u64,
}

impl OverclockRequest {
    /// A metrics-based request with defaults suitable for tests/examples.
    pub fn metrics_based(
        vm: impl Into<String>,
        cores: usize,
        target: MegaHertz,
    ) -> OverclockRequest {
        OverclockRequest {
            vm: vm.into(),
            cores,
            target,
            expected_utilization: 0.9,
            duration: None,
            priority: 1,
            cause: 0,
        }
    }

    /// Attach the causal decision id that triggered this request.
    pub fn caused_by(mut self, cause: u64) -> OverclockRequest {
        self.cause = cause;
        self
    }

    /// A schedule-based request for a known duration (reserves budget).
    pub fn scheduled(
        vm: impl Into<String>,
        cores: usize,
        target: MegaHertz,
        duration: SimDuration,
    ) -> OverclockRequest {
        OverclockRequest {
            vm: vm.into(),
            cores,
            target,
            expected_utilization: 0.9,
            duration: Some(duration),
            priority: 2,
            cause: 0,
        }
    }
}

/// Why an overclocking request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Admission control predicts the extra power would exceed the server's
    /// power budget.
    PowerBudget,
    /// The per-epoch overclocking lifetime budget is exhausted.
    LifetimeBudget,
    /// Not enough cores with remaining per-core time-in-state budget.
    CoreBudget,
    /// This part's silicon risk score exceeds the configured risk budget at
    /// every overclocked frequency level (frequency binning, §VI).
    RiskBudget,
    /// The request itself is malformed (zero cores, frequency not above
    /// turbo, …).
    Invalid,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::PowerBudget => "insufficient power budget",
            RejectReason::LifetimeBudget => "overclocking lifetime budget exhausted",
            RejectReason::CoreBudget => "no cores with remaining overclock budget",
            RejectReason::RiskBudget => "per-part risk budget exceeded",
            RejectReason::Invalid => "invalid request",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RejectReason {}

/// Events emitted by the sOA's control loop for the platform to act on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SoaEvent {
    /// Set the effective frequency of a grant's cores.
    SetFrequency {
        /// The affected grant.
        grant: GrantId,
        /// New frequency.
        frequency: MegaHertz,
    },
    /// A grant ended (budget exhausted or explicitly stopped).
    GrantEnded {
        /// The ended grant.
        grant: GrantId,
        /// Why it ended.
        reason: GrantEndReason,
    },
    /// Power or lifetime exhaustion is predicted within the configured
    /// window; the global WI agent should take corrective action (§IV-D,
    /// Fig. 11).
    ExhaustionWarning {
        /// What is running out.
        resource: ExhaustedResource,
        /// Predicted exhaustion instant.
        eta: SimTime,
        /// Causal decision id of the warning itself (`0` when telemetry is
        /// disabled); consumers propagate it as the `cause_id` of whatever
        /// corrective action they take.
        decision: u64,
    },
}

/// Why a grant ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrantEndReason {
    /// The workload released it.
    Released,
    /// The per-epoch lifetime budget ran out mid-grant.
    LifetimeBudgetExhausted,
    /// The scheduled duration completed.
    ScheduleComplete,
    /// The sOA restarted and lost its volatile grant state; the server
    /// re-joins conservatively at the default frequency.
    AgentRestart,
}

/// The resource an [`SoaEvent::ExhaustionWarning`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExhaustedResource {
    /// Power headroom under the assigned budget.
    Power,
    /// Overclocking lifetime budget.
    Lifetime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_scheduling_fields() {
        let m = OverclockRequest::metrics_based("vm1", 4, MegaHertz::new(4000));
        assert_eq!(m.duration, None);
        let s = OverclockRequest::scheduled("vm2", 8, MegaHertz::new(3800), SimDuration::HOUR);
        assert_eq!(s.duration, Some(SimDuration::HOUR));
        assert!(s.priority > m.priority);
    }

    #[test]
    fn requests_default_to_no_cause() {
        let m = OverclockRequest::metrics_based("vm1", 4, MegaHertz::new(4000));
        assert_eq!(m.cause, 0);
        assert_eq!(m.caused_by(17).cause, 17);
    }

    #[test]
    fn reject_reason_displays() {
        assert_eq!(
            RejectReason::PowerBudget.to_string(),
            "insufficient power budget"
        );
        assert_eq!(GrantId(3).to_string(), "grant3");
    }
}

//! The system variants evaluated in Table I.
//!
//! "We compare SmartOClock to (1) Central – an oracle with a global view of
//! power draw …, (2) NaiveOClock – a system that grants all overclocking
//! requests, (3) NoFeedback – a system that adheres to the per-server power
//! budgets with no exploration beyond, and (4) NoWarning – a system that
//! allows exploring but with no warnings." (paper §V-B)

use serde::{Deserialize, Serialize};

/// Which overclocking-management policy a deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Oracle with a global, instantaneous view of rack power; admission is
    /// decided against the *actual* rack headroom rather than predictions.
    Central,
    /// Grants every request; splits the rack budget evenly on capping.
    NaiveOClock,
    /// Prediction-based admission and heterogeneous budgets, but servers
    /// never explore beyond their assigned budgets.
    NoFeedback,
    /// Exploration enabled, but warning messages are ignored; servers only
    /// retreat on actual capping events.
    NoWarning,
    /// The full system.
    SmartOClock,
}

impl PolicyKind {
    /// All policies, in Table I's row order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Central,
        PolicyKind::NaiveOClock,
        PolicyKind::NoFeedback,
        PolicyKind::NoWarning,
        PolicyKind::SmartOClock,
    ];

    /// Whether admission control checks power predictions.
    /// (`NaiveOClock` grants everything.)
    pub fn admission_checked(self) -> bool {
        !matches!(self, PolicyKind::NaiveOClock)
    }

    /// Whether rack budgets are split heterogeneously by demand.
    /// "All systems bar NaiveOClock employ this optimization" (§V-B).
    pub fn heterogeneous_budgets(self) -> bool {
        !matches!(self, PolicyKind::NaiveOClock)
    }

    /// Whether servers explore beyond their assigned budget.
    pub fn explores(self) -> bool {
        matches!(self, PolicyKind::NoWarning | PolicyKind::SmartOClock)
    }

    /// Whether exploring servers back off on rack warnings.
    pub fn heeds_warnings(self) -> bool {
        matches!(self, PolicyKind::SmartOClock)
    }

    /// Whether admission consults a live global view instead of local
    /// predictions.
    pub fn is_central(self) -> bool {
        matches!(self, PolicyKind::Central)
    }

    /// Display name matching Table I.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Central => "Central",
            PolicyKind::NaiveOClock => "NaiveOClock",
            PolicyKind::NoFeedback => "NoFeedback",
            PolicyKind::NoWarning => "NoWarning",
            PolicyKind::SmartOClock => "SmartOClock",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_matrix_matches_paper() {
        use PolicyKind::*;
        // Admission: all but NaiveOClock.
        assert!(Central.admission_checked());
        assert!(!NaiveOClock.admission_checked());
        assert!(SmartOClock.admission_checked());
        // Heterogeneous budgets: all but NaiveOClock.
        assert!(!NaiveOClock.heterogeneous_budgets());
        assert!(NoFeedback.heterogeneous_budgets());
        // Exploration: NoWarning + SmartOClock only.
        assert!(!NoFeedback.explores());
        assert!(NoWarning.explores());
        assert!(SmartOClock.explores());
        // Warnings: SmartOClock only.
        assert!(!NoWarning.heeds_warnings());
        assert!(SmartOClock.heeds_warnings());
        // Central oracle.
        assert!(Central.is_central());
        assert!(!SmartOClock.is_central());
    }

    #[test]
    fn all_lists_five_in_table_order() {
        assert_eq!(PolicyKind::ALL.len(), 5);
        assert_eq!(PolicyKind::ALL[0], PolicyKind::Central);
        assert_eq!(PolicyKind::ALL[4], PolicyKind::SmartOClock);
        assert_eq!(PolicyKind::SmartOClock.to_string(), "SmartOClock");
    }
}

//! Overclocking-threshold inference from workload history.
//!
//! "To ease adoption, SmartOClock can be extended to infer the overclocking
//! thresholds. It can leverage workload historical data to determine
//! scale-up values. The lifetime impact of overclocking can be factored in
//! this analysis. For example, use P90 of historical value if overclocking
//! can be performed for 10% of the time only to comply with lifetime goals.
//! The overclocking impact needs to be estimated to determine the
//! scale-down value. An inaccurate estimate can either cause dithering if it
//! is too close to the scale-up threshold or waste precious overclocking
//! time if the estimate is too low." (paper §IV-A)

use crate::wi::{MetricKind, MetricTrigger};
use serde::{Deserialize, Serialize};

/// Configuration for threshold inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Fraction of time the lifetime budget allows overclocking
    /// (e.g. 0.10 → the scale-up threshold is the P90 of history).
    pub overclock_time_fraction: f64,
    /// Estimated metric improvement factor from overclocking (e.g. a
    /// latency metric shrinking to `1/speedup` of its value). Used to place
    /// the scale-down threshold below the scale-up threshold with enough
    /// hysteresis to avoid dithering.
    pub estimated_speedup: f64,
    /// Extra hysteresis margin between the estimated post-overclocking
    /// metric and the scale-down threshold, as a fraction of the scale-up
    /// threshold.
    pub hysteresis_margin: f64,
}

impl InferenceConfig {
    /// The paper-flavored default: 10 % overclocking time, the 3.3→4.0 GHz
    /// speedup (≈1.2×), and a 10 % hysteresis margin.
    pub fn reference() -> InferenceConfig {
        InferenceConfig {
            overclock_time_fraction: 0.10,
            estimated_speedup: 4000.0 / 3300.0,
            hysteresis_margin: 0.10,
        }
    }

    fn validate(&self) {
        assert!(
            self.overclock_time_fraction > 0.0 && self.overclock_time_fraction < 1.0,
            "overclock time fraction must be in (0, 1)"
        );
        assert!(self.estimated_speedup > 1.0, "speedup must exceed 1");
        assert!(
            (0.0..1.0).contains(&self.hysteresis_margin),
            "hysteresis margin must be in [0, 1)"
        );
    }
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig::reference()
    }
}

/// Infer a [`MetricTrigger`] from a workload's metric history.
///
/// The scale-up threshold is the `(1 − overclock_time_fraction)` quantile of
/// the history, so that triggering on it overclocks for approximately the
/// budgeted fraction of time. The scale-down threshold is the scale-up
/// value divided by the estimated speedup, lowered further by the hysteresis
/// margin (too-close thresholds dither; §IV-A).
///
/// # Panics
/// Panics if `history` is empty or the configuration is invalid.
///
/// ```
/// use smartoclock::infer::{infer_trigger, InferenceConfig};
/// use smartoclock::wi::MetricKind;
///
/// // P99 latency history in ms: mostly ~60, peaks to ~120 for ~10% of time.
/// let mut history = vec![60.0; 90];
/// history.extend(vec![120.0; 10]);
/// let trigger = infer_trigger(MetricKind::TailLatencyMs, &history, InferenceConfig::reference());
/// assert!(trigger.scale_up > 60.0 && trigger.scale_up <= 120.0);
/// assert!(trigger.scale_down < trigger.scale_up);
/// ```
pub fn infer_trigger(kind: MetricKind, history: &[f64], config: InferenceConfig) -> MetricTrigger {
    config.validate();
    assert!(
        !history.is_empty(),
        "cannot infer thresholds from an empty history"
    );
    let clean: Vec<f64> = history.iter().copied().filter(|v| v.is_finite()).collect();
    assert!(!clean.is_empty(), "history contains no finite samples");
    let q = (1.0 - config.overclock_time_fraction) * 100.0;
    let scale_up = simcore::stats::percentile(&clean, q);
    let post_overclock = scale_up / config.estimated_speedup;
    let scale_down = (post_overclock - config.hysteresis_margin * scale_up)
        .max(f64::MIN_POSITIVE)
        .min(scale_up * 0.95);
    MetricTrigger::new(kind, scale_up, scale_down)
}

/// Expected fraction of time the inferred trigger would have been active
/// over the same history (a sanity metric for operators adopting inferred
/// thresholds, §IV-A).
pub fn expected_duty_cycle(history: &[f64], trigger: MetricTrigger) -> f64 {
    if history.is_empty() {
        return 0.0;
    }
    let over = history.iter().filter(|&&v| v > trigger.scale_up).count();
    over as f64 / history.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Pcg32;

    fn diurnal_history() -> Vec<f64> {
        // 7 days of 5-minute P99 samples: ~50 ms base, ~110 ms during a
        // 2.4-hour daily peak (10% of the day), light noise.
        let mut rng = Pcg32::seed_from_u64(3);
        let mut out = Vec::new();
        for day in 0..7 {
            let _ = day;
            for slot in 0..288 {
                let hour = slot as f64 / 12.0;
                let peak = (10.0..12.4).contains(&hour);
                let base = if peak { 110.0 } else { 50.0 };
                out.push(base + rng.sample_normal(0.0, 2.0));
            }
        }
        out
    }

    #[test]
    fn inferred_duty_cycle_matches_budget() {
        let history = diurnal_history();
        let cfg = InferenceConfig::reference();
        let trigger = infer_trigger(MetricKind::TailLatencyMs, &history, cfg);
        let duty = expected_duty_cycle(&history, trigger);
        assert!(
            (duty - cfg.overclock_time_fraction).abs() < 0.03,
            "duty cycle {duty} should be near the 10% budget"
        );
        // The threshold lands between base and peak levels.
        assert!(trigger.scale_up > 60.0 && trigger.scale_up < 115.0);
    }

    #[test]
    fn scale_down_leaves_hysteresis() {
        let history = diurnal_history();
        let trigger = infer_trigger(
            MetricKind::TailLatencyMs,
            &history,
            InferenceConfig::reference(),
        );
        // Post-overclock estimate of the peak: peak/1.21 ≈ 91; scale-down
        // must be at or below that minus the margin.
        assert!(trigger.scale_down < trigger.scale_up / 1.2);
    }

    #[test]
    fn tighter_budget_raises_threshold() {
        let history = diurnal_history();
        let mut tight = InferenceConfig::reference();
        tight.overclock_time_fraction = 0.05;
        let loose_trigger = infer_trigger(
            MetricKind::TailLatencyMs,
            &history,
            InferenceConfig::reference(),
        );
        let tight_trigger = infer_trigger(MetricKind::TailLatencyMs, &history, tight);
        assert!(tight_trigger.scale_up >= loose_trigger.scale_up);
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut history = diurnal_history();
        history.push(f64::NAN);
        let trigger = infer_trigger(
            MetricKind::TailLatencyMs,
            &history,
            InferenceConfig::reference(),
        );
        assert!(trigger.scale_up.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty history")]
    fn rejects_empty_history() {
        let _ = infer_trigger(MetricKind::TailLatencyMs, &[], InferenceConfig::reference());
    }
}

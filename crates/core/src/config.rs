//! Tunable constants for the Server Overclocking Agent.
//!
//! Defaults follow the concrete values the paper gives in §IV-B/§IV-D: a
//! 20 W exploration step, ~30 s exploration window, 100 MHz frequency steps,
//! a power buffer below the limit for the feedback loop's hold band, a
//! 15-minute exhaustion-warning window, and a weekly lifetime epoch with a
//! 10 % overclocking budget.

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use soc_power::units::{MegaHertz, Watts};

/// Configuration of a [`crate::soa::ServerOverclockAgent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoaConfig {
    /// Fraction of lifetime that may be spent overclocked (default 10 %).
    pub overclock_time_fraction: f64,
    /// Lifetime-budget epoch (default one week).
    pub epoch: SimDuration,
    /// Exploration budget increment (default 20 W).
    pub explore_step: Watts,
    /// How long to hold an exploration step before concluding it is safe
    /// (default 30 s).
    pub explore_wait: SimDuration,
    /// How long to exploit a discovered budget before re-exploring
    /// (default 5 minutes).
    pub exploit_time: SimDuration,
    /// Initial backoff after a warning (default 60 s, doubled per warning).
    pub backoff_initial: SimDuration,
    /// Cap on the exponential backoff (default 30 minutes).
    pub backoff_max: SimDuration,
    /// Frequency control step (default 100 MHz).
    pub freq_step: MegaHertz,
    /// Hold band below the power budget: the feedback loop holds frequency
    /// when `budget - buffer <= draw < budget` (default 15 W).
    pub power_buffer: Watts,
    /// Exhaustion warning window: notify the WI agent when power or budget
    /// exhaustion is predicted within this horizon (default 15 minutes).
    pub exhaustion_window: SimDuration,
    /// Cap on cumulative exploration above the assigned budget
    /// (default 200 W).
    pub explore_cap: Watts,
    /// How stale the gOA-assigned budget may grow before the agent enters
    /// degraded mode (freeze exploration, enforce the last assignment).
    /// Only applies when budgets are stamped via
    /// `ServerOverclockAgent::set_power_budget_at`. Default 6 minutes —
    /// three missed 2-minute refresh cycles.
    #[serde(default = "default_budget_staleness_limit")]
    pub budget_staleness_limit: SimDuration,
    /// Per-part admission risk budget in `[0, 1]`: with binned silicon
    /// (`ServerOverclockAgent::set_silicon`) a request is admitted only
    /// while the part's risk score × its normalized overclock fraction
    /// stays at or below this budget; otherwise it is down-binned or
    /// denied. Default 1.0 — admit everything the part's bin certifies
    /// (and a no-op for uniform silicon, whose risk is zero).
    #[serde(default = "default_risk_budget")]
    pub risk_budget: f64,
}

fn default_budget_staleness_limit() -> SimDuration {
    SimDuration::from_minutes(6)
}

fn default_risk_budget() -> f64 {
    1.0
}

impl SoaConfig {
    /// The paper-default configuration.
    pub fn reference() -> SoaConfig {
        SoaConfig {
            overclock_time_fraction: 0.10,
            epoch: SimDuration::WEEK,
            explore_step: Watts::new(20.0),
            explore_wait: SimDuration::from_secs(30),
            exploit_time: SimDuration::from_minutes(5),
            backoff_initial: SimDuration::from_secs(60),
            backoff_max: SimDuration::from_minutes(30),
            freq_step: MegaHertz::new(100),
            power_buffer: Watts::new(15.0),
            exhaustion_window: SimDuration::from_minutes(15),
            explore_cap: Watts::new(200.0),
            budget_staleness_limit: default_budget_staleness_limit(),
            risk_budget: default_risk_budget(),
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics if any field is out of range.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.overclock_time_fraction),
            "overclock fraction must be in [0, 1]"
        );
        assert!(!self.epoch.is_zero(), "epoch must be non-zero");
        assert!(
            self.explore_step.get() > 0.0,
            "explore step must be positive"
        );
        assert!(
            !self.explore_wait.is_zero(),
            "explore wait must be non-zero"
        );
        assert!(
            !self.exploit_time.is_zero(),
            "exploit time must be non-zero"
        );
        assert!(!self.backoff_initial.is_zero(), "backoff must be non-zero");
        assert!(
            self.backoff_max >= self.backoff_initial,
            "backoff max below initial"
        );
        assert!(self.freq_step.get() > 0, "frequency step must be positive");
        assert!(
            self.power_buffer.get() >= 0.0,
            "power buffer must be non-negative"
        );
        assert!(
            !self.exhaustion_window.is_zero(),
            "exhaustion window must be non-zero"
        );
        assert!(
            self.explore_cap.get() >= 0.0,
            "explore cap must be non-negative"
        );
        assert!(
            !self.budget_staleness_limit.is_zero(),
            "budget staleness limit must be non-zero"
        );
        assert!(
            self.risk_budget.is_finite() && (0.0..=1.0).contains(&self.risk_budget),
            "risk budget must be in [0, 1]"
        );
    }
}

impl Default for SoaConfig {
    fn default() -> Self {
        SoaConfig::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_constants() {
        let c = SoaConfig::reference();
        assert_eq!(c.explore_step, Watts::new(20.0));
        assert_eq!(c.explore_wait, SimDuration::from_secs(30));
        assert_eq!(c.freq_step, MegaHertz::new(100));
        assert_eq!(c.exhaustion_window, SimDuration::from_minutes(15));
        assert_eq!(c.epoch, SimDuration::WEEK);
        assert_eq!(c.budget_staleness_limit, SimDuration::from_minutes(6));
        assert!((c.overclock_time_fraction - 0.10).abs() < 1e-12);
        assert!((c.risk_budget - 1.0).abs() < 1e-12);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "risk budget must be in [0, 1]")]
    fn validate_rejects_bad_risk_budget() {
        let mut c = SoaConfig::reference();
        c.risk_budget = 1.5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "explore step must be positive")]
    fn validate_rejects_zero_step() {
        let mut c = SoaConfig::reference();
        c.explore_step = Watts::ZERO;
        c.validate();
    }
}

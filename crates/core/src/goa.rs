//! The Global Overclocking Agent (gOA).
//!
//! "The sOAs periodically (e.g., weekly) exchange their templates with the
//! gOA. The gOA combines power and overclocking templates of all sOAs and
//! computes individual power budgets. … First, the gOA uses its power model
//! to separate the server's power into the regular and overclock power …
//! Second, the gOA assigns to each sOA the initial power budget that is
//! equal to the server's regular power consumption. Finally, the gOA splits
//! the remaining power headroom based on the overclocking requirements."
//! (paper §IV-C)

use crate::policy::PolicyKind;
use serde::{Deserialize, Serialize};
use simcore::faults::FaultPlan;
use simcore::series::TimeSeries;
use simcore::time::SimTime;
use soc_power::hierarchy::{heterogeneous_split, heterogeneous_split_into, DemandProfile};
use soc_power::model::PowerModel;
use soc_power::units::{MegaHertz, Watts};
use soc_predict::template::{PowerTemplate, TemplateKind};
use soc_telemetry::{tm_event, Component, Severity, Telemetry};

/// One server's weekly profile as exchanged with the gOA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerProfile {
    /// Template of the server's *regular* (non-overclocked) power draw.
    pub regular_power: PowerTemplate,
    /// Template of the *extra* power the server wants for overclocking.
    pub overclock_demand: PowerTemplate,
}

impl ServerProfile {
    /// Build a profile from raw telemetry: the server's baseline power
    /// history and the history of how many cores requested overclocking.
    /// The OC-cores series is converted to watts of extra demand through the
    /// power model (the gOA's "discrimination" step, §IV-C).
    ///
    /// # Panics
    /// Panics if the histories are shorter than one week.
    pub fn from_history(
        power_history: &TimeSeries,
        oc_cores_history: &TimeSeries,
        model: &PowerModel,
        oc_frequency: MegaHertz,
        expected_utilization: f64,
    ) -> ServerProfile {
        let per_core = model
            .overclock_delta(expected_utilization, 1, oc_frequency)
            .get();
        let demand_watts = oc_cores_history.map(|cores| cores * per_core);
        ServerProfile {
            regular_power: PowerTemplate::build(power_history, TemplateKind::DailyMed),
            overclock_demand: PowerTemplate::build(&demand_watts, TemplateKind::DailyMed),
        }
    }

    /// The demand pair at instant `t`.
    pub fn demand_at(&self, t: SimTime) -> DemandProfile {
        DemandProfile {
            regular: Watts::new(self.regular_power.predict(t).max(0.0)),
            overclock_demand: Watts::new(self.overclock_demand.predict(t).max(0.0)),
        }
    }
}

/// The per-rack Global Overclocking Agent.
///
/// Reproduces the paper's worked example (§IV-C):
///
/// ```
/// use smartoclock::goa::GlobalOverclockAgent;
/// use smartoclock::policy::PolicyKind;
/// use soc_power::hierarchy::DemandProfile;
/// use soc_power::units::Watts;
///
/// let goa = GlobalOverclockAgent::new(Watts::new(1300.0), PolicyKind::SmartOClock);
/// let budgets = goa.budgets_for(&[
///     DemandProfile { regular: Watts::new(400.0), overclock_demand: Watts::new(50.0) },
///     DemandProfile { regular: Watts::new(300.0), overclock_demand: Watts::new(100.0) },
/// ]);
/// assert_eq!(budgets, vec![Watts::new(600.0), Watts::new(700.0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalOverclockAgent {
    rack_limit: Watts,
    policy: PolicyKind,
}

impl GlobalOverclockAgent {
    /// Create a gOA for a rack with the given power limit.
    ///
    /// # Panics
    /// Panics if `rack_limit` is not positive.
    pub fn new(rack_limit: Watts, policy: PolicyKind) -> GlobalOverclockAgent {
        assert!(rack_limit.get() > 0.0, "rack limit must be positive");
        GlobalOverclockAgent { rack_limit, policy }
    }

    /// The rack limit budgets are computed against.
    pub fn rack_limit(&self) -> Watts {
        self.rack_limit
    }

    /// Replace the rack limit (power-constrained experiments, §V-A).
    ///
    /// # Panics
    /// Panics if `limit` is not positive.
    pub fn set_rack_limit(&mut self, limit: Watts) {
        assert!(limit.get() > 0.0, "rack limit must be positive");
        self.rack_limit = limit;
    }

    /// Compute per-server budgets from explicit demand profiles.
    ///
    /// Heterogeneous-budget policies use the §IV-C split; `NaiveOClock`
    /// splits evenly.
    ///
    /// # Panics
    /// Panics if `demands` is empty.
    pub fn budgets_for(&self, demands: &[DemandProfile]) -> Vec<Watts> {
        assert!(!demands.is_empty(), "need at least one server");
        if self.policy.heterogeneous_budgets() {
            heterogeneous_split(self.rack_limit, demands)
        } else {
            vec![self.rack_limit / demands.len() as f64; demands.len()]
        }
    }

    /// Allocation-free [`budgets_for`](Self::budgets_for): clears `out` and
    /// fills it with the same budgets, reusing its capacity. Every budget
    /// refresh of the large-scale hot path goes through this, so the split
    /// must not allocate in steady state.
    ///
    /// # Panics
    /// Panics if `demands` is empty.
    pub fn budgets_for_into(&self, demands: &[DemandProfile], out: &mut Vec<Watts>) {
        assert!(!demands.is_empty(), "need at least one server");
        if self.policy.heterogeneous_budgets() {
            heterogeneous_split_into(self.rack_limit, demands, out);
        } else {
            out.clear();
            out.resize(demands.len(), self.rack_limit / demands.len() as f64);
        }
    }

    /// Compute per-server budgets at instant `t` from exchanged profiles.
    ///
    /// # Panics
    /// Panics if `profiles` is empty.
    pub fn budgets_at(&self, t: SimTime, profiles: &[ServerProfile]) -> Vec<Watts> {
        let demands: Vec<DemandProfile> = profiles.iter().map(|p| p.demand_at(t)).collect();
        self.budgets_for(&demands)
    }

    /// Fault-aware [`budgets_for`](Self::budgets_for): returns `None` while
    /// the fault plan marks the gOA unreachable at `now` — the control plane
    /// cannot recompute the split, and callers must keep running on whatever
    /// budgets the sOAs last received (the paper's decentralized
    /// fault-tolerance argument, §III-Q5).
    ///
    /// # Panics
    /// Panics if `demands` is empty.
    pub fn budgets_for_faulted(
        &self,
        now: SimTime,
        demands: &[DemandProfile],
        faults: &FaultPlan,
    ) -> Option<Vec<Watts>> {
        if faults.goa_unreachable(now) {
            None
        } else {
            Some(self.budgets_for(demands))
        }
    }

    /// [`budgets_for`](Self::budgets_for) plus a `budget_split` telemetry
    /// record and per-server budget gauges, labelled with the rack index.
    ///
    /// # Panics
    /// Panics if `demands` is empty.
    pub fn budgets_for_traced(
        &self,
        now: SimTime,
        demands: &[DemandProfile],
        telemetry: &Telemetry,
        rack: usize,
    ) -> Vec<Watts> {
        let budgets = self.budgets_for(demands);
        if telemetry.is_enabled() {
            let allocated: f64 = budgets.iter().map(|b| b.get()).sum();
            let min = budgets
                .iter()
                .map(|b| b.get())
                .fold(f64::INFINITY, f64::min);
            let max = budgets
                .iter()
                .map(|b| b.get())
                .fold(f64::NEG_INFINITY, f64::max);
            tm_event!(telemetry, now, Component::Goa, Severity::Info, "budget_split",
                "rack" => rack,
                "servers" => budgets.len(),
                "rack_limit_w" => self.rack_limit.get(),
                "allocated_w" => allocated,
                "min_w" => min,
                "max_w" => max,
                "decision_id" => telemetry.next_id());
            telemetry.metrics(|m| {
                m.inc_counter("goa_budget_splits", &[("rack", rack.into())]);
                for (server, budget) in budgets.iter().enumerate() {
                    m.set_gauge(
                        "soa_budget_w",
                        &[("rack", rack.into()), ("server", server.into())],
                        budget.get(),
                    );
                }
            });
        }
        budgets
    }

    /// [`budgets_at`](Self::budgets_at) plus the `budget_split` telemetry of
    /// [`budgets_for_traced`](Self::budgets_for_traced).
    ///
    /// # Panics
    /// Panics if `profiles` is empty.
    pub fn budgets_at_traced(
        &self,
        t: SimTime,
        profiles: &[ServerProfile],
        telemetry: &Telemetry,
        rack: usize,
    ) -> Vec<Watts> {
        let demands: Vec<DemandProfile> = profiles.iter().map(|p| p.demand_at(t)).collect();
        self.budgets_for_traced(t, &demands, telemetry, rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn flat_series(value: f64) -> TimeSeries {
        TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::WEEK,
            SimDuration::from_minutes(30),
            |_| value,
        )
    }

    #[test]
    fn paper_worked_example() {
        let goa = GlobalOverclockAgent::new(Watts::new(1300.0), PolicyKind::SmartOClock);
        let budgets = goa.budgets_for(&[
            DemandProfile {
                regular: Watts::new(400.0),
                overclock_demand: Watts::new(50.0),
            },
            DemandProfile {
                regular: Watts::new(300.0),
                overclock_demand: Watts::new(100.0),
            },
        ]);
        assert_eq!(budgets, vec![Watts::new(600.0), Watts::new(700.0)]);
    }

    #[test]
    fn naive_policy_splits_evenly() {
        let goa = GlobalOverclockAgent::new(Watts::new(1300.0), PolicyKind::NaiveOClock);
        let budgets = goa.budgets_for(&[
            DemandProfile {
                regular: Watts::new(400.0),
                overclock_demand: Watts::new(50.0),
            },
            DemandProfile {
                regular: Watts::new(300.0),
                overclock_demand: Watts::new(100.0),
            },
        ]);
        assert_eq!(budgets, vec![Watts::new(650.0), Watts::new(650.0)]);
    }

    #[test]
    fn profile_from_history_converts_cores_to_watts() {
        let model = PowerModel::reference_server();
        let oc_freq = model.plan().max_overclock();
        let profile = ServerProfile::from_history(
            &flat_series(300.0),
            &flat_series(10.0),
            &model,
            oc_freq,
            0.9,
        );
        let d = profile.demand_at(SimTime::ZERO + SimDuration::from_days(8));
        assert!((d.regular.get() - 300.0).abs() < 1e-6);
        let per_core = model.overclock_delta(0.9, 1, oc_freq).get();
        assert!((d.overclock_demand.get() - 10.0 * per_core).abs() < 1e-6);
    }

    #[test]
    fn budgets_at_consumes_profiles() {
        let model = PowerModel::reference_server();
        let oc_freq = model.plan().max_overclock();
        let p1 = ServerProfile::from_history(
            &flat_series(400.0),
            &flat_series(5.0),
            &model,
            oc_freq,
            0.9,
        );
        let p2 = ServerProfile::from_history(
            &flat_series(300.0),
            &flat_series(10.0),
            &model,
            oc_freq,
            0.9,
        );
        let goa = GlobalOverclockAgent::new(Watts::new(1300.0), PolicyKind::SmartOClock);
        let budgets = goa.budgets_at(SimTime::ZERO + SimDuration::from_days(9), &[p1, p2]);
        assert_eq!(budgets.len(), 2);
        // Server 2 wants twice the OC power, so it gets the larger share of
        // headroom (same structure as the paper's example).
        let extra1 = budgets[0] - Watts::new(400.0);
        let extra2 = budgets[1] - Watts::new(300.0);
        assert!(extra2 > extra1);
        // Budget conservation.
        assert!(((budgets[0] + budgets[1]) - Watts::new(1300.0)).get().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "rack limit must be positive")]
    fn rejects_zero_limit() {
        let _ = GlobalOverclockAgent::new(Watts::ZERO, PolicyKind::SmartOClock);
    }

    #[test]
    fn faulted_budgets_withhold_during_outage() {
        use simcore::faults::FaultPlanConfig;
        let goa = GlobalOverclockAgent::new(Watts::new(1300.0), PolicyKind::SmartOClock);
        let demands = [
            DemandProfile {
                regular: Watts::new(400.0),
                overclock_demand: Watts::new(50.0),
            },
            DemandProfile {
                regular: Watts::new(300.0),
                overclock_demand: Watts::new(100.0),
            },
        ];
        let cfg = FaultPlanConfig {
            goa_outages: 1,
            goa_outage_len: SimDuration::WEEK,
            ..FaultPlanConfig::none()
        };
        let plan = FaultPlan::generate(&cfg, SimTime::ZERO, SimTime::ZERO + SimDuration::WEEK);
        // The single week-long outage covers the whole horizon.
        let during = plan.outages()[0].start;
        assert_eq!(goa.budgets_for_faulted(during, &demands, &plan), None);
        // A zero-fault plan always answers.
        let healthy = FaultPlan::none();
        assert_eq!(
            goa.budgets_for_faulted(during, &demands, &healthy),
            Some(goa.budgets_for(&demands))
        );
    }
}

//! The Server Overclocking Agent (sOA).
//!
//! Implements the per-server half of SmartOClock (paper §IV-B and §IV-D,
//! Fig. 11):
//!
//! * **Admission control** — an incoming request is granted only if (a) the
//!   per-epoch overclocking lifetime budget can cover it, (b) enough cores
//!   have per-core time-in-state budget, and (c) the predicted server power
//!   (template) plus the overclocking delta fits under the server's power
//!   budget.
//! * **Prioritized feedback loop** — every control tick compares the
//!   measured draw against the effective budget and moves one grant's
//!   frequency a step up (highest priority first) or down (lowest priority
//!   first), holding inside the `[budget − buffer, budget)` band.
//! * **Exploration/exploitation** — when constrained, the sOA conditionally
//!   raises its own budget in 20 W steps; a rack *warning* during
//!   exploration makes it retreat one step and back off exponentially; a
//!   *capping event* resets it to the assigned budget. After a safe
//!   exploration window it *exploits* the discovered budget for a while.
//! * **Exhaustion prediction** — using its power template and lifetime
//!   budget, the sOA warns the WI agent when either resource will run out
//!   within the configured window, enabling proactive scale-out.

use crate::config::SoaConfig;
use crate::messages::{
    ExhaustedResource, GrantEndReason, GrantId, OverclockRequest, RejectReason, SoaEvent,
};
use crate::policy::PolicyKind;
use simcore::time::{SimDuration, SimTime};
use soc_power::model::PowerModel;
use soc_power::rack::RackSignal;
use soc_power::units::{MegaHertz, Watts};
use soc_predict::template::PowerTemplate;
use soc_reliability::binning::{part_wear_model, SiliconPart};
use soc_reliability::budget::OverclockBudget;
use soc_reliability::tracker::TimeInState;
use soc_reliability::wear::{AgeingLedger, WearModel};
use soc_telemetry::{tm_event, Component, Severity, Telemetry};
use std::collections::BTreeMap;

/// Stable label for a [`RejectReason`] in telemetry output.
fn reject_label(reason: RejectReason) -> &'static str {
    match reason {
        RejectReason::PowerBudget => "power_budget",
        RejectReason::LifetimeBudget => "lifetime_budget",
        RejectReason::CoreBudget => "core_budget",
        RejectReason::RiskBudget => "risk_budget",
        RejectReason::Invalid => "invalid",
    }
}

/// Stable label for a [`GrantEndReason`] in telemetry output.
fn end_label(reason: GrantEndReason) -> &'static str {
    match reason {
        GrantEndReason::Released => "released",
        GrantEndReason::LifetimeBudgetExhausted => "lifetime_exhausted",
        GrantEndReason::ScheduleComplete => "schedule_complete",
        GrantEndReason::AgentRestart => "agent_restart",
    }
}

/// An active overclocking grant.
#[derive(Debug, Clone)]
pub struct Grant {
    /// The original request.
    pub request: OverclockRequest,
    /// The physical cores assigned.
    pub cores: Vec<usize>,
    /// The currently commanded frequency.
    pub current: MegaHertz,
    /// When the grant started.
    pub started: SimTime,
    /// For scheduled grants, when the reservation runs out.
    pub ends_at: Option<SimTime>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    Exploring { since: SimTime },
    Exploiting { until: SimTime },
    BackedOff { until: SimTime },
}

#[derive(Debug, Clone)]
struct Explorer {
    phase: Phase,
    extra: Watts,
    backoff: SimDuration,
}

/// Cumulative counters for evaluation (Table I columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoaStats {
    /// Requests received.
    pub requests: u64,
    /// Requests granted.
    pub granted: u64,
    /// Warnings acted upon (exploration retreats).
    pub warning_retreats: u64,
    /// Capping events observed.
    pub capping_resets: u64,
}

/// The per-server overclocking agent.
///
/// ```
/// use smartoclock::soa::ServerOverclockAgent;
/// use smartoclock::messages::OverclockRequest;
/// use smartoclock::policy::PolicyKind;
/// use smartoclock::config::SoaConfig;
/// use soc_power::model::PowerModel;
/// use soc_power::units::{MegaHertz, Watts};
/// use simcore::time::SimTime;
///
/// let model = PowerModel::reference_server();
/// let mut soa = ServerOverclockAgent::new(model, SoaConfig::reference(), PolicyKind::SmartOClock);
/// soa.set_power_budget(Watts::new(500.0));
/// let req = OverclockRequest::metrics_based("vm0", 8, MegaHertz::new(4000));
/// let grant = soa.request_overclock(SimTime::ZERO, req).expect("plenty of headroom");
/// assert!(soa.grant(grant).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ServerOverclockAgent {
    model: PowerModel,
    config: SoaConfig,
    policy: PolicyKind,
    assigned_budget: Watts,
    template: Option<PowerTemplate>,
    lifetime: OverclockBudget,
    tracker: TimeInState,
    tracker_epoch: u64,
    grants: BTreeMap<GrantId, Grant>,
    /// Causal decision id of each live grant's admission (`oc_grant`), used
    /// as the `cause_id` of follow-on `freq_set`/`grant_end`/`oc_release`
    /// events. Entries are dropped when the grant ends.
    grant_decisions: BTreeMap<GrantId, u64>,
    last_admission_decision: u64,
    next_grant: u64,
    explorer: Explorer,
    last_tick: Option<SimTime>,
    last_measured: Option<Watts>,
    /// When the gOA last refreshed the budget via
    /// [`Self::set_power_budget_at`]. `None` disables staleness tracking
    /// (legacy [`Self::set_power_budget`] callers and naive policies).
    budget_refreshed_at: Option<SimTime>,
    /// Set while the agent is in degraded mode (budget staleness exceeded
    /// the configured limit): the instant degradation began.
    degraded_since: Option<SimTime>,
    /// Causal decision id of the `degraded_enter` event, used as the
    /// `cause_id` of the matching `degraded_exit`.
    degraded_decision: u64,
    power_rejected: bool,
    last_power_warning_eta: Option<SimTime>,
    last_lifetime_warning_eta: Option<SimTime>,
    /// This server's realized silicon part, when the fleet models per-part
    /// heterogeneity ([`Self::set_silicon`]). `None` means uniform silicon:
    /// the admission risk gate is bypassed entirely.
    silicon: Option<SiliconPart>,
    /// Part-scaled wear model, rebuilt whenever silicon is (re)assigned.
    wear_model: Option<WearModel>,
    /// Durable physical-wear ledger: overclocked intervals charged at the
    /// part-scaled ageing rate. Like the lifetime ledger, it models wear
    /// already incurred and therefore survives [`Self::restart`].
    wear: AgeingLedger,
    stats: SoaStats,
    telemetry: Telemetry,
    server_id: usize,
}

impl ServerOverclockAgent {
    /// Create an agent for a server described by `model`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(model: PowerModel, config: SoaConfig, policy: PolicyKind) -> ServerOverclockAgent {
        config.validate();
        let lifetime = OverclockBudget::new(config.overclock_time_fraction, config.epoch);
        let per_core_cap = config.epoch.mul_f64(config.overclock_time_fraction);
        ServerOverclockAgent {
            tracker: TimeInState::new(model.cores(), per_core_cap),
            model,
            config,
            policy,
            assigned_budget: Watts::ZERO,
            template: None,
            lifetime,
            tracker_epoch: 0,
            grants: BTreeMap::new(),
            grant_decisions: BTreeMap::new(),
            last_admission_decision: 0,
            next_grant: 0,
            explorer: Explorer {
                phase: Phase::Idle,
                extra: Watts::ZERO,
                backoff: config.backoff_initial,
            },
            last_tick: None,
            last_measured: None,
            budget_refreshed_at: None,
            degraded_since: None,
            degraded_decision: 0,
            power_rejected: false,
            last_power_warning_eta: None,
            last_lifetime_warning_eta: None,
            silicon: None,
            wear_model: None,
            wear: AgeingLedger::new(),
            stats: SoaStats::default(),
            telemetry: Telemetry::disabled(),
            server_id: 0,
        }
    }

    /// Attach a telemetry handle, labelling this agent's events and metrics
    /// with `server_id`. Disabled by default.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, server_id: usize) {
        self.telemetry = telemetry;
        self.server_id = server_id;
    }

    /// The policy this agent runs.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// The power model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SoaStats {
        self.stats
    }

    /// The budget assigned by the gOA.
    pub fn assigned_budget(&self) -> Watts {
        self.assigned_budget
    }

    /// Assign a new power budget (from the gOA's heterogeneous split).
    /// Resets any exploration on top of the old budget.
    ///
    /// Staleness tracking stays disabled on this path: callers that never
    /// refresh (naive policies, tests) must not drift into degraded mode.
    /// Control planes with a refresh cadence use
    /// [`Self::set_power_budget_at`].
    pub fn set_power_budget(&mut self, budget: Watts) {
        self.assigned_budget = budget.clamp_non_negative();
        self.explorer.extra = Watts::ZERO;
        self.explorer.phase = Phase::Idle;
    }

    /// [`Self::set_power_budget`] stamped with the refresh instant, enabling
    /// budget-staleness tracking: if no further refresh arrives within
    /// `SoaConfig::budget_staleness_limit` (gOA outage, dropped messages)
    /// the agent enters degraded mode on its next control tick — it stops
    /// exploring beyond the stale assignment and keeps enforcing it, which
    /// is the paper's decentralized fault-tolerance argument (§III-Q5).
    pub fn set_power_budget_at(&mut self, now: SimTime, budget: Watts) {
        self.set_power_budget(budget);
        self.budget_refreshed_at = Some(now);
        if let Some(since) = self.degraded_since.take() {
            tm_event!(self.telemetry, now, Component::Fault, Severity::Info, "degraded_exit",
                "server" => self.server_id,
                "degraded_us" => now.saturating_since(since),
                "cause_id" => self.degraded_decision);
            self.degraded_decision = 0;
        }
    }

    /// Age of the assigned budget at `now`, when staleness tracking is
    /// enabled (a [`Self::set_power_budget_at`] call has been made).
    pub fn budget_staleness(&self, now: SimTime) -> Option<SimDuration> {
        self.budget_refreshed_at.map(|at| now.saturating_since(at))
    }

    /// Whether the agent is running degraded on a stale budget.
    pub fn is_degraded(&self) -> bool {
        self.degraded_since.is_some()
    }

    /// The budget the feedback loop currently enforces: assigned plus any
    /// exploration extra.
    pub fn effective_budget(&self) -> Watts {
        self.assigned_budget + self.explorer.extra
    }

    /// Install the server's regular-power template (rebuilt weekly, §IV-B).
    pub fn set_power_template(&mut self, template: PowerTemplate) {
        self.template = Some(template);
    }

    /// Assign this server's realized silicon part (frequency binning).
    ///
    /// Enables the per-part admission risk gate: requests above the part's
    /// binned maximum or whose risk-weighted overclock fraction exceeds
    /// `SoaConfig::risk_budget` are down-binned to the highest certified
    /// frequency, or denied with [`RejectReason::RiskBudget`] when no
    /// overclocked level fits. Also rebuilds the part-scaled wear model that
    /// charges the durable ageing ledger. A [`SiliconPart::uniform`] part is
    /// transparent (risk zero, full frequency range).
    pub fn set_silicon(&mut self, part: SiliconPart) {
        self.wear_model = Some(part_wear_model(
            &WearModel::reference(*self.model.curve()),
            &part,
        ));
        self.silicon = Some(part);
    }

    /// The assigned silicon part, if heterogeneity is modelled.
    pub fn silicon(&self) -> Option<&SiliconPart> {
        self.silicon.as_ref()
    }

    /// The durable physical-wear ledger (overclocked intervals charged at
    /// the part-scaled ageing rate; only advances while silicon is set).
    pub fn wear_ledger(&self) -> &AgeingLedger {
        &self.wear
    }

    /// Scale the lifetime budget (overclocking-constrained experiments).
    pub fn scale_lifetime_budget(&mut self, scale: f64) {
        self.lifetime.scale_fraction(scale);
        let cap = self.config.epoch.mul_f64(self.lifetime.fraction());
        self.tracker.set_per_core_cap(cap);
    }

    /// Remaining lifetime budget this epoch.
    pub fn lifetime_remaining(&self) -> SimDuration {
        self.lifetime.remaining()
    }

    /// Look up an active grant.
    pub fn grant(&self, id: GrantId) -> Option<&Grant> {
        self.grants.get(&id)
    }

    /// Iterate over active grants.
    pub fn grants(&self) -> impl Iterator<Item = (GrantId, &Grant)> {
        self.grants.iter().map(|(&id, g)| (id, g))
    }

    /// Number of currently overclocked cores (commanded above turbo).
    pub fn overclocked_cores(&self) -> usize {
        let turbo = self.model.plan().turbo();
        self.grants
            .values()
            .filter(|g| g.current > turbo)
            .map(|g| g.cores.len())
            .sum()
    }

    /// Predicted *extra* power demand of all active grants at their targets.
    pub fn overclock_demand(&self) -> Watts {
        self.grants
            .values()
            .map(|g| {
                self.model.overclock_delta(
                    g.request.expected_utilization,
                    g.cores.len(),
                    g.request.target,
                )
            })
            .sum()
    }

    /// Process an overclocking request (admission control, §IV-B).
    ///
    /// # Errors
    /// Returns the [`RejectReason`] when admission fails. NaiveOClock never
    /// rejects for power/lifetime (only for malformed requests).
    pub fn request_overclock(
        &mut self,
        now: SimTime,
        request: OverclockRequest,
    ) -> Result<GrantId, RejectReason> {
        let cause = request.cause;
        let result = self.admit(now, request);
        // The admission outcome is itself a causal decision: follow-on
        // events (freq_set, grant_end, slo_miss attribution) point back at
        // it via `cause_id`.
        let decision = self.telemetry.next_id();
        self.last_admission_decision = decision;
        self.telemetry.metrics(|m| {
            m.inc_counter("soa_requests", &[("server", self.server_id.into())]);
        });
        match result {
            Ok(id) => {
                if decision != 0 {
                    self.grant_decisions.insert(id, decision);
                }
                let grant = &self.grants[&id];
                tm_event!(self.telemetry, now, Component::Soa, Severity::Info, "oc_grant",
                    "server" => self.server_id,
                    "grant" => id.0,
                    "vm" => grant.request.vm.as_str(),
                    "cores" => grant.cores.len(),
                    "target_mhz" => grant.request.target.get(),
                    "priority" => grant.request.priority,
                    "scheduled" => grant.ends_at.is_some(),
                    "decision_id" => decision,
                    "cause_id" => cause);
                self.telemetry.metrics(|m| {
                    m.inc_counter("soa_grants", &[("server", self.server_id.into())]);
                });
            }
            Err(reason) => {
                tm_event!(self.telemetry, now, Component::Soa, Severity::Warn, "oc_deny",
                    "server" => self.server_id,
                    "reason" => reject_label(reason),
                    "decision_id" => decision,
                    "cause_id" => cause);
                self.telemetry.metrics(|m| {
                    m.inc_counter("soa_denials", &[("reason", reject_label(reason).into())]);
                });
            }
        }
        result
    }

    /// Causal decision id of the most recent admission outcome (grant or
    /// denial); `0` before any request or when telemetry is disabled. The
    /// harness uses this to attribute SLO misses to admission denials.
    pub fn last_admission_decision(&self) -> u64 {
        self.last_admission_decision
    }

    fn admit(
        &mut self,
        now: SimTime,
        mut request: OverclockRequest,
    ) -> Result<GrantId, RejectReason> {
        self.stats.requests += 1;
        self.roll_epoch(now);
        // Structural validation applies to every policy.
        if request.cores == 0
            || request.cores > self.model.cores()
            || request.target <= self.model.plan().turbo()
            || !(0.0..=1.0).contains(&request.expected_utilization)
        {
            return Err(RejectReason::Invalid);
        }
        // Per-part risk gate (frequency binning). A physical property of the
        // silicon, so it applies to every policy: marginal parts cannot run
        // stably above their binned maximum no matter how naive the control
        // plane is.
        if let Some(part) = &self.silicon {
            match part.admit(&self.model.plan(), self.config.risk_budget, request.target) {
                Some(f) => {
                    if f < request.target {
                        tm_event!(self.telemetry, now, Component::Soa, Severity::Info, "down_bin",
                            "server" => self.server_id,
                            "vm" => request.vm.as_str(),
                            "bin" => part.bin,
                            "risk" => part.risk,
                            "from_mhz" => request.target.get(),
                            "to_mhz" => f.get(),
                            "decision_id" => self.telemetry.next_id(),
                            "cause_id" => request.cause);
                        self.telemetry.metrics(|m| {
                            m.inc_counter("soa_down_bins", &[("server", self.server_id.into())]);
                        });
                        request.target = f;
                    }
                }
                None => return Err(RejectReason::RiskBudget),
            }
        }
        let checked = self.policy.admission_checked();
        // Lifetime budget.
        let reservation = request.duration;
        if checked {
            match reservation {
                Some(d) => {
                    if self.lifetime.remaining() < d {
                        return Err(RejectReason::LifetimeBudget);
                    }
                }
                None => {
                    if self.lifetime.remaining().is_zero() {
                        return Err(RejectReason::LifetimeBudget);
                    }
                }
            }
        }
        // Core selection.
        let per_core_need = reservation.unwrap_or(SimDuration::from_minutes(5));
        let cores = if checked {
            let picked = self.tracker.pick_cores(request.cores, per_core_need);
            if picked.len() < request.cores {
                return Err(RejectReason::CoreBudget);
            }
            picked
        } else {
            (0..request.cores).collect()
        };
        // Power admission.
        if checked && !self.power_fits(now, &request) {
            // Remember the unmet demand: the exploration loop may grow the
            // budget so a retried request fits ("the sOA can independently
            // explore a higher budget to maximize overclocking", §IV-D).
            self.power_rejected = true;
            return Err(RejectReason::PowerBudget);
        }
        // Commit: reserve lifetime budget for scheduled requests.
        if checked {
            if let Some(d) = reservation {
                self.lifetime
                    .reserve(now, d)
                    .map_err(|_| RejectReason::LifetimeBudget)?;
            }
        }
        let id = GrantId(self.next_grant);
        self.next_grant += 1;
        let start_freq = self.model.plan().step_up(self.model.plan().turbo());
        self.grants.insert(
            id,
            Grant {
                ends_at: reservation.map(|d| now + d),
                cores,
                current: start_freq,
                started: now,
                request,
            },
        );
        self.stats.granted += 1;
        Ok(id)
    }

    /// Predicted-regular-power + active-OC + new-request fits under budget?
    fn power_fits(&self, now: SimTime, request: &OverclockRequest) -> bool {
        let regular = self.predict_regular(now);
        let active = self.overclock_demand();
        let extra =
            self.model
                .overclock_delta(request.expected_utilization, request.cores, request.target);
        regular + active + extra <= self.effective_budget()
    }

    fn predict_regular(&self, now: SimTime) -> Watts {
        match &self.template {
            Some(t) => Watts::new(t.predict(now)),
            // Without a template yet (first week of operation), fall back to
            // the latest measured draw net of active overclocking, or a
            // conservative mid-load guess before any measurement.
            None => match self.last_measured {
                Some(measured) => (measured - self.overclock_demand()).clamp_non_negative(),
                None => self
                    .model
                    .server_power_uniform(0.5, self.model.plan().turbo()),
            },
        }
    }

    /// Release a grant (workload no longer needs overclocking).
    ///
    /// For scheduled grants ended early, the unconsumed tail of the
    /// reservation (from `now` to the scheduled end) is returned to the
    /// budget.
    ///
    /// Returns `false` if the grant does not exist.
    pub fn end_overclock(&mut self, now: SimTime, id: GrantId) -> bool {
        if let Some(grant) = self.grants.remove(&id) {
            if let Some(ends_at) = grant.ends_at {
                if ends_at > now {
                    let _ = self.lifetime.release(ends_at.since(now));
                }
            }
            let cause = self.grant_decisions.remove(&id).unwrap_or(0);
            tm_event!(self.telemetry, now, Component::Soa, Severity::Info, "oc_release",
                "server" => self.server_id,
                "grant" => id.0,
                "vm" => grant.request.vm.as_str(),
                "held_us" => now.saturating_since(grant.started),
                "cause_id" => cause);
            true
        } else {
            false
        }
    }

    /// One control-loop iteration (§IV-D). `measured_power` is the server's
    /// current draw; `signal` is the latest rack-manager message, if any.
    /// Returns the events the platform must apply/forward.
    pub fn control_tick(
        &mut self,
        now: SimTime,
        measured_power: Watts,
        signal: Option<RackSignal>,
    ) -> Vec<SoaEvent> {
        self.control_tick_traced(now, measured_power, signal, 0)
    }

    /// [`Self::control_tick`] with the causal decision id of the rack event
    /// that produced `signal` (`0` when unknown): backoff/retreat telemetry
    /// emitted in response to the signal carries it as `cause_id`.
    pub fn control_tick_traced(
        &mut self,
        now: SimTime,
        measured_power: Watts,
        signal: Option<RackSignal>,
        signal_cause: u64,
    ) -> Vec<SoaEvent> {
        let mut events = Vec::new();
        self.roll_epoch(now);
        self.check_staleness(now);
        let dt = match self.last_tick {
            Some(last) => now.saturating_since(last),
            None => SimDuration::ZERO,
        };
        self.last_tick = Some(now);
        self.last_measured = Some(measured_power);

        self.account_time(now, dt, &mut events);
        self.expire_schedules(now, &mut events);
        self.handle_signal(now, signal, signal_cause);
        self.feedback_step(measured_power, &mut events);
        self.explore_step(now, measured_power);
        self.power_rejected = false;
        self.predict_exhaustion(now, &mut events);
        self.trace_tick(now, measured_power, &events);
        // Grants that ended this tick no longer need their admission ids.
        for event in &events {
            if let SoaEvent::GrantEnded { grant, .. } = event {
                self.grant_decisions.remove(grant);
            }
        }
        events
    }

    /// Mirror the outgoing control-loop events into telemetry.
    fn trace_tick(&self, now: SimTime, measured_power: Watts, events: &[SoaEvent]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.metrics(|m| {
            m.observe(
                "soa_measured_w",
                &[("server", self.server_id.into())],
                measured_power.get(),
            );
        });
        for event in events {
            match event {
                SoaEvent::SetFrequency { grant, frequency } => {
                    tm_event!(self.telemetry, now, Component::Soa, Severity::Debug, "freq_set",
                        "server" => self.server_id,
                        "grant" => grant.0,
                        "mhz" => frequency.get(),
                        "cause_id" => self.grant_decisions.get(grant).copied().unwrap_or(0));
                }
                SoaEvent::GrantEnded { grant, reason } => {
                    tm_event!(self.telemetry, now, Component::Soa, Severity::Info, "grant_end",
                        "server" => self.server_id,
                        "grant" => grant.0,
                        "reason" => end_label(*reason),
                        "cause_id" => self.grant_decisions.get(grant).copied().unwrap_or(0));
                }
                SoaEvent::ExhaustionWarning {
                    resource,
                    eta,
                    decision,
                } => {
                    let label = match resource {
                        ExhaustedResource::Power => "power",
                        ExhaustedResource::Lifetime => "lifetime",
                    };
                    tm_event!(self.telemetry, now, Component::Soa, Severity::Warn,
                        "exhaustion_warning",
                        "server" => self.server_id,
                        "resource" => label,
                        "eta_us" => *eta,
                        "decision_id" => *decision);
                }
            }
        }
    }

    /// Charge elapsed overclocked time to the lifetime budget and per-core
    /// counters; migrate or end grants whose cores are exhausted.
    fn account_time(&mut self, now: SimTime, dt: SimDuration, events: &mut Vec<SoaEvent>) {
        if dt.is_zero() {
            return;
        }
        let turbo = self.model.plan().turbo();
        let active: Vec<GrantId> = self
            .grants
            .iter()
            .filter(|(_, g)| g.current > turbo)
            .map(|(&id, _)| id)
            .collect();
        if active.is_empty() {
            return;
        }
        // Per-core accounting.
        for id in &active {
            let cores = self.grants[id].cores.clone();
            for core in cores {
                self.tracker.record(core, dt);
            }
        }
        // Physical wear: charge the interval at the part-scaled ageing rate
        // of the hottest active operating point (temperature held at the
        // model reference — the sOA has no thermal sensor in this model).
        if let Some(wm) = &self.wear_model {
            if let Some(g) = active
                .iter()
                .map(|id| &self.grants[id])
                .max_by_key(|g| g.current)
            {
                let rate = wm.ageing_rate(
                    g.request.expected_utilization.clamp(0.0, 1.0),
                    g.current,
                    wm.reference_temp_c(),
                );
                self.wear.record(rate, dt);
            }
        }
        // Server-level budget: the wall-clock interval counts once.
        let scheduled_active = active.iter().any(|id| self.grants[id].ends_at.is_some());
        let consumed = if scheduled_active {
            self.lifetime
                .consume_reserved(now, dt)
                .or_else(|_| self.lifetime.consume(now, dt))
        } else {
            self.lifetime.consume(now, dt)
        };
        if consumed.is_err() && self.policy.admission_checked() {
            // Budget ran dry mid-grant: stop all overclocking.
            for id in active {
                if self.grants.remove(&id).is_some() {
                    events.push(SoaEvent::SetFrequency {
                        grant: id,
                        frequency: turbo,
                    });
                    events.push(SoaEvent::GrantEnded {
                        grant: id,
                        reason: GrantEndReason::LifetimeBudgetExhausted,
                    });
                }
            }
            return;
        }
        // Core exhaustion: migrate to fresh cores or end the grant (§IV-D).
        let need = SimDuration::from_minutes(5);
        let exhausted: Vec<GrantId> = self
            .grants
            .iter()
            .filter(|(_, g)| {
                g.current > turbo && g.cores.iter().any(|&c| !self.tracker.has_budget(c, need))
            })
            .map(|(&id, _)| id)
            .collect();
        for id in exhausted {
            if !self.policy.admission_checked() {
                continue; // Naive policy never migrates or stops.
            }
            let n = self.grants[&id].cores.len();
            let fresh = self.tracker.pick_cores(n, need);
            if fresh.len() == n {
                if let Some(g) = self.grants.get_mut(&id) {
                    g.cores = fresh;
                }
            } else if self.grants.remove(&id).is_some() {
                events.push(SoaEvent::SetFrequency {
                    grant: id,
                    frequency: turbo,
                });
                events.push(SoaEvent::GrantEnded {
                    grant: id,
                    reason: GrantEndReason::LifetimeBudgetExhausted,
                });
            }
        }
    }

    fn expire_schedules(&mut self, now: SimTime, events: &mut Vec<SoaEvent>) {
        let done: Vec<GrantId> = self
            .grants
            .iter()
            .filter(|(_, g)| g.ends_at.is_some_and(|e| now >= e))
            .map(|(&id, _)| id)
            .collect();
        let turbo = self.model.plan().turbo();
        for id in done {
            self.grants.remove(&id);
            events.push(SoaEvent::SetFrequency {
                grant: id,
                frequency: turbo,
            });
            events.push(SoaEvent::GrantEnded {
                grant: id,
                reason: GrantEndReason::ScheduleComplete,
            });
        }
    }

    fn handle_signal(&mut self, now: SimTime, signal: Option<RackSignal>, signal_cause: u64) {
        match signal {
            Some(RackSignal::Capping) => {
                // Back to the initial assignment (§IV-D "On a power capping
                // event, the sOA goes back to its initial power budget"),
                // and hold off before exploring again.
                self.stats.capping_resets += 1;
                self.explorer.extra = Watts::ZERO;
                let until = now + self.explorer.backoff;
                self.explorer.backoff = (self.explorer.backoff * 2).min(self.config.backoff_max);
                self.explorer.phase = Phase::BackedOff { until };
                tm_event!(self.telemetry, now, Component::Soa, Severity::Error, "capping_reset",
                    "server" => self.server_id,
                    "backoff_until_us" => until,
                    "cause_id" => signal_cause);
                self.telemetry.metrics(|m| {
                    m.inc_counter("soa_capping_resets", &[("server", self.server_id.into())]);
                });
            }
            Some(RackSignal::Warning) => {
                let exploring = matches!(self.explorer.phase, Phase::Exploring { .. });
                if exploring && self.policy.heeds_warnings() {
                    self.stats.warning_retreats += 1;
                    self.explorer.extra =
                        (self.explorer.extra - self.config.explore_step).clamp_non_negative();
                    let until = now + self.explorer.backoff;
                    self.explorer.backoff =
                        (self.explorer.backoff * 2).min(self.config.backoff_max);
                    self.explorer.phase = Phase::BackedOff { until };
                    tm_event!(self.telemetry, now, Component::Soa, Severity::Warn,
                        "warning_retreat",
                        "server" => self.server_id,
                        "extra_w" => self.explorer.extra.get(),
                        "backoff_until_us" => until,
                        "cause_id" => signal_cause);
                    self.telemetry.metrics(|m| {
                        m.inc_counter("soa_warning_retreats", &[("server", self.server_id.into())]);
                    });
                }
                // "An sOA ignores the message if it is not exploring."
            }
            Some(RackSignal::Normal) | None => {}
        }
    }

    /// One step of the prioritized frequency feedback loop.
    fn feedback_step(&mut self, measured: Watts, events: &mut Vec<SoaEvent>) {
        if self.grants.is_empty() {
            return;
        }
        let plan = self.model.plan();
        let turbo = plan.turbo();
        let limit = self.effective_budget();
        let threshold = (limit - self.config.power_buffer).clamp_non_negative();
        if measured >= limit {
            // Throttle the lowest-priority overclocked grant one step.
            if let Some((&id, _)) = self
                .grants
                .iter()
                .filter(|(_, g)| g.current > turbo)
                .min_by_key(|(&id, g)| (g.request.priority, id))
            {
                if let Some(g) = self.grants.get_mut(&id) {
                    g.current = plan.step_down(g.current).max(turbo);
                    events.push(SoaEvent::SetFrequency {
                        grant: id,
                        frequency: g.current,
                    });
                }
            }
        } else if measured < threshold {
            // Boost the highest-priority grant still below target.
            if let Some((&id, _)) = self
                .grants
                .iter()
                .filter(|(_, g)| g.current < g.request.target.min(plan.max_overclock()))
                .max_by_key(|(&id, g)| (g.request.priority, std::cmp::Reverse(id)))
            {
                if let Some(g) = self.grants.get_mut(&id) {
                    g.current = plan.step_up(g.current).min(g.request.target);
                    events.push(SoaEvent::SetFrequency {
                        grant: id,
                        frequency: g.current,
                    });
                }
            }
        }
        // Inside the hold band: do nothing.
    }

    /// Enter degraded mode when the assigned budget has gone stale (no gOA
    /// refresh within `budget_staleness_limit`). Degraded agents freeze
    /// exploration and fall back to enforcing the last assignment — the
    /// safe-on-stale-budgets behaviour the paper's decentralized design
    /// promises (§III-Q5). Exit happens in [`Self::set_power_budget_at`]
    /// when a fresh budget finally lands.
    fn check_staleness(&mut self, now: SimTime) {
        if self.degraded_since.is_some() {
            return;
        }
        let Some(age) = self.budget_staleness(now) else {
            return;
        };
        if age < self.config.budget_staleness_limit {
            return;
        }
        self.degraded_since = Some(now);
        self.explorer.extra = Watts::ZERO;
        self.explorer.phase = Phase::Idle;
        let decision = self.telemetry.next_id();
        self.degraded_decision = decision;
        tm_event!(self.telemetry, now, Component::Fault, Severity::Warn, "degraded_enter",
            "server" => self.server_id,
            "stale_us" => age,
            "decision_id" => decision);
        self.telemetry.metrics(|m| {
            m.inc_counter("soa_degraded_entries", &[("server", self.server_id.into())]);
        });
    }

    /// Simulate an sOA process restart (fault injection): all volatile
    /// control state is lost and the server re-joins conservatively — every
    /// live grant is revoked back to the default (turbo) frequency, the
    /// power template is forgotten, and the assigned budget drops to zero so
    /// no overclocking is admitted until the gOA assigns a fresh budget.
    ///
    /// Durable state survives: the lifetime ledger, per-core time-in-state
    /// counters, the assigned silicon part identity, and the ageing ledger
    /// all model physical facts about the hardware rather than control
    /// state (the paper's reliability accounting is persisted
    /// platform-side), and the cumulative stats are measurement, not
    /// control state. Grant ids keep counting up so post-restart grants
    /// never collide with revoked ones.
    ///
    /// Returns the revocation events the platform must apply, exactly like
    /// [`Self::control_tick`].
    pub fn restart(&mut self, now: SimTime) -> Vec<SoaEvent> {
        let turbo = self.model.plan().turbo();
        let mut events = Vec::new();
        let dropped = self.grants.len();
        let ids: Vec<GrantId> = self.grants.keys().copied().collect();
        for id in ids {
            events.push(SoaEvent::SetFrequency {
                grant: id,
                frequency: turbo,
            });
            events.push(SoaEvent::GrantEnded {
                grant: id,
                reason: GrantEndReason::AgentRestart,
            });
        }
        self.grants.clear();
        self.grant_decisions.clear();
        self.explorer = Explorer {
            phase: Phase::Idle,
            extra: Watts::ZERO,
            backoff: self.config.backoff_initial,
        };
        self.template = None;
        self.assigned_budget = Watts::ZERO;
        self.last_tick = None;
        self.last_measured = None;
        self.power_rejected = false;
        self.last_power_warning_eta = None;
        self.last_lifetime_warning_eta = None;
        self.last_admission_decision = 0;
        self.budget_refreshed_at = None;
        self.degraded_since = None;
        self.degraded_decision = 0;
        tm_event!(self.telemetry, now, Component::Fault, Severity::Warn, "fault_injected",
            "server" => self.server_id,
            "kind" => "soa_restart",
            "dropped_grants" => dropped,
            "decision_id" => self.telemetry.next_id());
        self.telemetry.metrics(|m| {
            m.inc_counter("soa_restarts", &[("server", self.server_id.into())]);
        });
        events
    }

    /// Exploration/exploitation phase transitions (§IV-D).
    fn explore_step(&mut self, now: SimTime, measured: Watts) {
        if !self.policy.explores() {
            return;
        }
        if self.degraded_since.is_some() {
            // Degraded: never push beyond the stale assignment.
            return;
        }
        let extra_before = self.explorer.extra;
        let limit = self.effective_budget();
        let threshold = (limit - self.config.power_buffer).clamp_non_negative();
        let plan = self.model.plan();
        let constrained = (measured >= threshold
            && self
                .grants
                .values()
                .any(|g| g.current < g.request.target.min(plan.max_overclock())))
            || self.power_rejected;
        match self.explorer.phase {
            Phase::Idle => {
                if constrained && self.explorer.extra < self.config.explore_cap {
                    self.explorer.extra = (self.explorer.extra + self.config.explore_step)
                        .min(self.config.explore_cap);
                    self.explorer.phase = Phase::Exploring { since: now };
                }
            }
            Phase::Exploring { since } => {
                if now.saturating_since(since) >= self.config.explore_wait {
                    // No warning arrived during the window: safe so far.
                    if constrained && self.explorer.extra < self.config.explore_cap {
                        self.explorer.extra = (self.explorer.extra + self.config.explore_step)
                            .min(self.config.explore_cap);
                        self.explorer.phase = Phase::Exploring { since: now };
                    } else {
                        self.explorer.phase = Phase::Exploiting {
                            until: now + self.config.exploit_time,
                        };
                        self.explorer.backoff = self.config.backoff_initial;
                    }
                }
            }
            Phase::Exploiting { until } => {
                if now >= until {
                    self.explorer.phase = Phase::Idle;
                }
            }
            Phase::BackedOff { until } => {
                if now >= until {
                    self.explorer.phase = Phase::Idle;
                }
            }
        }
        if self.explorer.extra != extra_before {
            tm_event!(self.telemetry, now, Component::Soa, Severity::Debug, "explore_budget",
                "server" => self.server_id,
                "extra_w" => self.explorer.extra.get(),
                "effective_w" => self.effective_budget().get());
        }
    }

    /// Emit exhaustion warnings when power or lifetime will run out within
    /// the configured window (§IV-D, Fig. 11).
    fn predict_exhaustion(&mut self, now: SimTime, events: &mut Vec<SoaEvent>) {
        // Lifetime: only relevant while actively overclocking.
        if !self.grants.is_empty() {
            if let Some(remaining) = self.lifetime.time_to_exhaustion(now) {
                if remaining <= self.config.exhaustion_window {
                    let eta = now + remaining;
                    if self.last_lifetime_warning_eta != Some(eta) {
                        self.last_lifetime_warning_eta = Some(eta);
                        events.push(SoaEvent::ExhaustionWarning {
                            resource: ExhaustedResource::Lifetime,
                            eta,
                            decision: self.telemetry.next_id(),
                        });
                    }
                }
            } else {
                let eta = now;
                if self.last_lifetime_warning_eta != Some(eta) {
                    self.last_lifetime_warning_eta = Some(eta);
                    events.push(SoaEvent::ExhaustionWarning {
                        resource: ExhaustedResource::Lifetime,
                        eta,
                        decision: self.telemetry.next_id(),
                    });
                }
            }
        }
        // Power: find when predicted regular power + OC demand exceeds the
        // budget within the window.
        if let Some(template) = &self.template {
            let demand = self.overclock_demand();
            if demand > Watts::ZERO {
                let budget = self.effective_budget();
                let threshold = (budget - demand).get();
                if let Some(eta) =
                    template.next_time_at_or_above(now, threshold, self.config.exhaustion_window)
                {
                    if self.last_power_warning_eta != Some(eta) {
                        self.last_power_warning_eta = Some(eta);
                        events.push(SoaEvent::ExhaustionWarning {
                            resource: ExhaustedResource::Power,
                            eta,
                            decision: self.telemetry.next_id(),
                        });
                    }
                }
            }
        }
    }

    fn roll_epoch(&mut self, now: SimTime) {
        self.lifetime.advance_to(now);
        let epoch = now.as_micros() / self.config.epoch.as_micros();
        if epoch != self.tracker_epoch {
            self.tracker.reset();
            self.tracker_epoch = epoch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::series::TimeSeries;
    use soc_predict::template::TemplateKind;

    fn agent(policy: PolicyKind) -> ServerOverclockAgent {
        let mut a = ServerOverclockAgent::new(
            PowerModel::reference_server(),
            SoaConfig::reference(),
            policy,
        );
        a.set_power_budget(Watts::new(450.0));
        a
    }

    fn oc_request(cores: usize) -> OverclockRequest {
        OverclockRequest::metrics_based("vm", cores, MegaHertz::new(4000))
    }

    fn flat_template(watts: Watts) -> PowerTemplate {
        let hist = TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::WEEK,
            SimDuration::from_minutes(5),
            |_| watts.get(),
        );
        PowerTemplate::build(&hist, TemplateKind::DailyMed)
    }

    #[test]
    fn grants_when_headroom_exists() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(250.0)));
        let id = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        assert_eq!(a.grants().count(), 1);
        assert_eq!(a.grant(id).unwrap().cores.len(), 8);
        assert_eq!(a.stats().granted, 1);
    }

    #[test]
    fn rejects_on_power_budget() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(440.0))); // barely under the 450W budget
        let err = a
            .request_overclock(SimTime::ZERO, oc_request(32))
            .unwrap_err();
        assert_eq!(err, RejectReason::PowerBudget);
    }

    #[test]
    fn naive_policy_grants_despite_power() {
        let mut a = agent(PolicyKind::NaiveOClock);
        a.set_power_template(flat_template(Watts::new(440.0)));
        assert!(a.request_overclock(SimTime::ZERO, oc_request(32)).is_ok());
    }

    #[test]
    fn rejects_malformed_requests() {
        let mut a = agent(PolicyKind::SmartOClock);
        let mut bad = oc_request(0);
        assert_eq!(
            a.request_overclock(SimTime::ZERO, bad.clone()).unwrap_err(),
            RejectReason::Invalid
        );
        bad = oc_request(4);
        bad.target = MegaHertz::new(3300); // not above turbo
        assert_eq!(
            a.request_overclock(SimTime::ZERO, bad).unwrap_err(),
            RejectReason::Invalid
        );
    }

    #[test]
    fn scheduled_requests_reserve_lifetime_budget() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let before = a.lifetime_remaining();
        let req =
            OverclockRequest::scheduled("vm", 4, MegaHertz::new(4000), SimDuration::from_hours(2));
        a.request_overclock(SimTime::ZERO, req).unwrap();
        assert_eq!(before - a.lifetime_remaining(), SimDuration::from_hours(2));
    }

    #[test]
    fn rejects_scheduled_request_exceeding_budget() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        // Weekly budget is 16.8h; ask for 20h.
        let req =
            OverclockRequest::scheduled("vm", 4, MegaHertz::new(4000), SimDuration::from_hours(20));
        assert_eq!(
            a.request_overclock(SimTime::ZERO, req).unwrap_err(),
            RejectReason::LifetimeBudget
        );
    }

    #[test]
    fn feedback_ramps_frequency_up_to_target() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let id = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        // Plenty of headroom: each tick should raise by one step.
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_secs(1);
            let _ = a.control_tick(t, Watts::new(250.0), None);
        }
        assert_eq!(a.grant(id).unwrap().current, MegaHertz::new(4000));
    }

    #[test]
    fn feedback_throttles_when_over_budget() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let id = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            t += SimDuration::from_secs(1);
            let _ = a.control_tick(t, Watts::new(250.0), None);
        }
        let high = a.grant(id).unwrap().current;
        // Now report draw above the budget.
        t += SimDuration::from_secs(1);
        let events = a.control_tick(t, Watts::new(460.0), None);
        let lower = a.grant(id).unwrap().current;
        assert!(lower < high, "must throttle: {high} -> {lower}");
        assert!(events
            .iter()
            .any(|e| matches!(e, SoaEvent::SetFrequency { frequency, .. } if *frequency == lower)));
    }

    #[test]
    fn feedback_prioritizes_important_grants() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let mut low = oc_request(4);
        low.priority = 1;
        low.vm = "low".into();
        let mut high = oc_request(4);
        high.priority = 9;
        high.vm = "high".into();
        let id_low = a.request_overclock(SimTime::ZERO, low).unwrap();
        let id_high = a.request_overclock(SimTime::ZERO, high).unwrap();
        // One boost step with headroom goes to the high-priority grant.
        let _ = a.control_tick(SimTime::from_secs(1), Watts::new(250.0), None);
        assert!(a.grant(id_high).unwrap().current > a.grant(id_low).unwrap().current);
        // Over budget: the low-priority grant is throttled first.
        let _ = a.control_tick(SimTime::from_secs(2), Watts::new(500.0), None);
        let turbo = a.model().plan().turbo();
        assert_eq!(a.grant(id_low).unwrap().current, turbo);
    }

    #[test]
    fn exploration_raises_effective_budget_when_constrained() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_budget(Watts::new(300.0));
        a.set_power_template(flat_template(Watts::new(200.0)));
        let _ = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        // Draw pinned at the budget: constrained, so exploration begins.
        let _ = a.control_tick(SimTime::from_secs(1), Watts::new(299.0), None);
        assert!(a.effective_budget() > Watts::new(300.0));
    }

    #[test]
    fn warning_during_exploration_retreats_and_backs_off() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_budget(Watts::new(300.0));
        a.set_power_template(flat_template(Watts::new(200.0)));
        let _ = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        let _ = a.control_tick(SimTime::from_secs(1), Watts::new(299.0), None);
        let explored = a.effective_budget();
        assert!(explored > Watts::new(300.0));
        // Warning arrives while exploring: retreat one step.
        let _ = a.control_tick(
            SimTime::from_secs(2),
            Watts::new(310.0),
            Some(RackSignal::Warning),
        );
        assert_eq!(a.effective_budget(), Watts::new(300.0));
        assert_eq!(a.stats().warning_retreats, 1);
        // Backed off: no immediate re-exploration.
        let _ = a.control_tick(SimTime::from_secs(3), Watts::new(299.0), None);
        assert_eq!(a.effective_budget(), Watts::new(300.0));
        // After the backoff expires, exploration resumes.
        let _ = a.control_tick(SimTime::from_secs(120), Watts::new(299.0), None);
        let _ = a.control_tick(SimTime::from_secs(121), Watts::new(299.0), None);
        assert!(a.effective_budget() > Watts::new(300.0));
    }

    #[test]
    fn power_rejection_triggers_exploration() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_budget(Watts::new(260.0));
        a.set_power_template(flat_template(Watts::new(250.0)));
        // Not enough headroom for 16 cores: rejected for power.
        let err = a
            .request_overclock(SimTime::ZERO, oc_request(16))
            .unwrap_err();
        assert_eq!(err, RejectReason::PowerBudget);
        // The next control tick explores a bigger budget even though there
        // is no active grant.
        let _ = a.control_tick(SimTime::from_secs(1), Watts::new(250.0), None);
        assert!(a.effective_budget() > Watts::new(260.0));
        // After enough exploration (no warnings), the retry succeeds.
        let mut t = SimTime::from_secs(1);
        let mut granted = false;
        for _ in 0..20 {
            t += SimDuration::from_secs(31);
            if a.request_overclock(t, oc_request(16)).is_ok() {
                granted = true;
                break;
            }
            let _ = a.control_tick(t, Watts::new(250.0), None);
        }
        assert!(granted, "exploration should eventually admit the request");
    }

    #[test]
    fn nowarning_policy_ignores_warnings() {
        let mut a = agent(PolicyKind::NoWarning);
        a.set_power_budget(Watts::new(300.0));
        a.set_power_template(flat_template(Watts::new(200.0)));
        let _ = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        let _ = a.control_tick(SimTime::from_secs(1), Watts::new(299.0), None);
        let explored = a.effective_budget();
        let _ = a.control_tick(
            SimTime::from_secs(2),
            Watts::new(310.0),
            Some(RackSignal::Warning),
        );
        assert_eq!(
            a.effective_budget(),
            explored,
            "NoWarning must ignore warnings"
        );
    }

    #[test]
    fn nofeedback_policy_never_explores() {
        let mut a = agent(PolicyKind::NoFeedback);
        a.set_power_budget(Watts::new(300.0));
        a.set_power_template(flat_template(Watts::new(200.0)));
        let _ = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        for s in 1..100 {
            let _ = a.control_tick(SimTime::from_secs(s), Watts::new(299.0), None);
        }
        assert_eq!(a.effective_budget(), Watts::new(300.0));
    }

    #[test]
    fn capping_resets_to_assigned_budget() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_budget(Watts::new(300.0));
        a.set_power_template(flat_template(Watts::new(200.0)));
        let _ = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        // Explore a couple of steps.
        let _ = a.control_tick(SimTime::from_secs(1), Watts::new(299.0), None);
        let _ = a.control_tick(SimTime::from_secs(40), Watts::new(319.0), None);
        assert!(a.effective_budget() > Watts::new(300.0));
        let _ = a.control_tick(
            SimTime::from_secs(41),
            Watts::new(340.0),
            Some(RackSignal::Capping),
        );
        assert_eq!(a.effective_budget(), Watts::new(300.0));
        assert_eq!(a.stats().capping_resets, 1);
    }

    #[test]
    fn schedule_expires_and_frequency_returns_to_turbo() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let req = OverclockRequest::scheduled(
            "vm",
            4,
            MegaHertz::new(4000),
            SimDuration::from_minutes(10),
        );
        let id = a.request_overclock(SimTime::ZERO, req).unwrap();
        let events = a.control_tick(
            SimTime::ZERO + SimDuration::from_minutes(11),
            Watts::new(250.0),
            None,
        );
        assert!(a.grant(id).is_none());
        assert!(events.iter().any(|e| matches!(
            e,
            SoaEvent::GrantEnded {
                reason: GrantEndReason::ScheduleComplete,
                ..
            }
        )));
    }

    #[test]
    fn lifetime_exhaustion_ends_grants() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        // Shrink the budget so it exhausts quickly: 0.1% of a week ≈ 10 min.
        a.scale_lifetime_budget(0.01);
        let _ = a.request_overclock(SimTime::ZERO, oc_request(4)).unwrap();
        // Ramp up so the grant is actually overclocked.
        let mut t = SimTime::ZERO;
        let mut ended = false;
        for _ in 0..300 {
            t += SimDuration::from_minutes(1);
            let events = a.control_tick(t, Watts::new(250.0), None);
            if events.iter().any(|e| {
                matches!(
                    e,
                    SoaEvent::GrantEnded {
                        reason: GrantEndReason::LifetimeBudgetExhausted,
                        ..
                    }
                )
            }) {
                ended = true;
                break;
            }
        }
        assert!(
            ended,
            "grant should end when the lifetime budget is exhausted"
        );
        assert_eq!(a.grants().count(), 0);
    }

    #[test]
    fn exhaustion_warning_fires_within_window() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        a.scale_lifetime_budget(0.02); // ~20 min budget
        let _ = a.request_overclock(SimTime::ZERO, oc_request(4)).unwrap();
        let mut warned = false;
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            t += SimDuration::from_minutes(1);
            let events = a.control_tick(t, Watts::new(250.0), None);
            if events.iter().any(|e| {
                matches!(
                    e,
                    SoaEvent::ExhaustionWarning {
                        resource: ExhaustedResource::Lifetime,
                        ..
                    }
                )
            }) {
                warned = true;
                break;
            }
        }
        assert!(
            warned,
            "lifetime exhaustion warning should fire before the budget dies"
        );
    }

    #[test]
    fn power_exhaustion_warning_uses_template_ramp() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_budget(Watts::new(400.0));
        // Template: 250W at night, 395W during 9-17h.
        let hist = TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::WEEK,
            SimDuration::from_minutes(5),
            |t| {
                let h = t.time_of_day().as_hours_f64();
                if (9.0..17.0).contains(&h) {
                    395.0
                } else {
                    250.0
                }
            },
        );
        a.set_power_template(PowerTemplate::build(&hist, TemplateKind::DailyMed));
        // Start OC on the following Monday at 8:50; the 9:00 ramp collides
        // with the OC demand within the 15-minute window.
        let now = SimTime::ZERO
            + SimDuration::WEEK
            + SimDuration::from_hours(8)
            + SimDuration::from_minutes(50);
        let _ = a.request_overclock(now, oc_request(8)).unwrap();
        let events = a.control_tick(now, Watts::new(260.0), None);
        assert!(
            events.iter().any(|e| matches!(
                e,
                SoaEvent::ExhaustionWarning {
                    resource: ExhaustedResource::Power,
                    ..
                }
            )),
            "power exhaustion warning should fire before the 9AM ramp"
        );
    }

    #[test]
    fn early_release_returns_scheduled_reservation() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let req =
            OverclockRequest::scheduled("vm", 4, MegaHertz::new(4000), SimDuration::from_hours(4));
        let id = a.request_overclock(SimTime::ZERO, req).unwrap();
        let reserved_after = a.lifetime_remaining();
        // End after one hour: three hours of reservation come back.
        assert!(a.end_overclock(SimTime::ZERO + SimDuration::from_hours(1), id));
        assert_eq!(
            a.lifetime_remaining() - reserved_after,
            SimDuration::from_hours(3)
        );
    }

    #[test]
    fn end_overclock_removes_grant() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let id = a.request_overclock(SimTime::ZERO, oc_request(4)).unwrap();
        assert!(a.end_overclock(SimTime::from_secs(60), id));
        assert!(!a.end_overclock(SimTime::from_secs(61), id));
        assert_eq!(a.grants().count(), 0);
    }

    #[test]
    fn grant_migrates_to_fresh_cores_when_assigned_cores_exhaust() {
        // §IV-D: "the sOA explores if any other cores on a server have
        // enough budget to support the VM's overclocking. In that case, the
        // sOA reschedules the VM on those cores."
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let id = a.request_overclock(SimTime::ZERO, oc_request(4)).unwrap();
        let original = a.grant(id).unwrap().cores.clone();
        // Pre-wear the assigned cores to the brink of their per-core cap.
        let cap = a.tracker.per_core_cap();
        for &c in &original {
            a.tracker
                .record(c, cap.saturating_sub(SimDuration::from_minutes(6)));
        }
        // Ramp the grant above turbo, then let accounting notice exhaustion.
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            t += SimDuration::from_secs(30);
            let _ = a.control_tick(t, Watts::new(250.0), None);
        }
        t += SimDuration::from_minutes(10);
        let _ = a.control_tick(t, Watts::new(250.0), None);
        let migrated = a.grant(id).expect("grant must survive via migration");
        assert_ne!(
            migrated.cores, original,
            "the grant should have been rescheduled onto fresh cores"
        );
        for &c in &migrated.cores {
            assert!(a.tracker.has_budget(c, SimDuration::from_minutes(5)));
        }
    }

    fn binned_agent(risk_budget: f64, part: SiliconPart) -> ServerOverclockAgent {
        let mut cfg = SoaConfig::reference();
        cfg.risk_budget = risk_budget;
        let mut a =
            ServerOverclockAgent::new(PowerModel::reference_server(), cfg, PolicyKind::SmartOClock);
        a.set_power_budget(Watts::new(450.0));
        a.set_silicon(part);
        a
    }

    fn marginal_part(max_oc: MegaHertz, risk: f64) -> SiliconPart {
        SiliconPart {
            bin: 3,
            max_oc,
            voltage_wear_mult: 1.4,
            temp_wear_mult: 1.2,
            risk,
        }
    }

    #[test]
    fn uniform_silicon_is_transparent_even_under_zero_risk_budget() {
        let plan = PowerModel::reference_server().plan();
        let mut a = binned_agent(0.0, SiliconPart::uniform(&plan));
        a.set_power_template(flat_template(Watts::new(250.0)));
        let id = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        assert_eq!(a.grant(id).unwrap().request.target, MegaHertz::new(4000));
    }

    #[test]
    fn risk_gate_down_bins_to_certified_level() {
        // risk 1.0 under a 0.5 budget: the highest ladder level whose
        // overclock fraction stays ≤ 0.5 of the 3300→4000 span is 3600 MHz.
        let plan = PowerModel::reference_server().plan();
        let part = marginal_part(plan.max_overclock(), 1.0);
        let mut a = binned_agent(0.5, part);
        a.set_power_template(flat_template(Watts::new(250.0)));
        let id = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        assert_eq!(a.grant(id).unwrap().request.target, MegaHertz::new(3600));
    }

    #[test]
    fn risk_gate_denies_marginal_part_under_tight_budget() {
        let plan = PowerModel::reference_server().plan();
        let part = marginal_part(plan.max_overclock(), 0.8);
        let mut a = binned_agent(0.0, part);
        a.set_power_template(flat_template(Watts::new(250.0)));
        let err = a
            .request_overclock(SimTime::ZERO, oc_request(8))
            .unwrap_err();
        assert_eq!(err, RejectReason::RiskBudget);
        assert_eq!(a.grants().count(), 0);
    }

    #[test]
    fn risk_gate_applies_to_naive_policy_too() {
        // Binning is a physical property of the part, not a policy choice.
        let plan = PowerModel::reference_server().plan();
        let mut cfg = SoaConfig::reference();
        cfg.risk_budget = 0.0;
        let mut a =
            ServerOverclockAgent::new(PowerModel::reference_server(), cfg, PolicyKind::NaiveOClock);
        a.set_power_budget(Watts::new(450.0));
        a.set_silicon(marginal_part(plan.max_overclock(), 0.8));
        let err = a
            .request_overclock(SimTime::ZERO, oc_request(8))
            .unwrap_err();
        assert_eq!(err, RejectReason::RiskBudget);
    }

    #[test]
    fn restart_preserves_silicon_identity_and_wear_ledger() {
        let plan = PowerModel::reference_server().plan();
        let part = marginal_part(plan.max_overclock(), 0.3);
        let mut a = binned_agent(1.0, part);
        a.set_power_template(flat_template(Watts::new(200.0)));
        let _ = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
        // Ramp above turbo and let accounting charge the ageing ledger.
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_minutes(1);
            let _ = a.control_tick(t, Watts::new(250.0), None);
        }
        let worn = a.wear_ledger().actual_days();
        assert!(worn > 0.0, "overclocked intervals must accrue wear");
        let _ = a.restart(t);
        assert_eq!(a.silicon(), Some(&part), "bin identity is durable");
        assert_eq!(
            a.wear_ledger().actual_days(),
            worn,
            "the wear ledger survives a restart"
        );
        // The risk gate still enforces after the restart.
        a.set_power_budget(Watts::new(450.0));
        assert!(a.request_overclock(t, oc_request(8)).is_ok());
    }

    #[test]
    fn wear_accrues_faster_on_marginal_silicon() {
        let plan = PowerModel::reference_server().plan();
        let run = |part: SiliconPart| {
            let mut a = binned_agent(1.0, part);
            a.set_power_template(flat_template(Watts::new(200.0)));
            let _ = a.request_overclock(SimTime::ZERO, oc_request(8)).unwrap();
            let mut t = SimTime::ZERO;
            for _ in 0..10 {
                t += SimDuration::from_minutes(1);
                let _ = a.control_tick(t, Watts::new(250.0), None);
            }
            a.wear_ledger().actual_days()
        };
        let pristine = run(SiliconPart::uniform(&plan));
        let marginal = run(marginal_part(plan.max_overclock(), 0.3));
        assert!(
            marginal > pristine,
            "higher wear multipliers must age faster: {marginal} vs {pristine}"
        );
    }

    #[test]
    fn core_budget_rejection_when_all_cores_worn() {
        let mut a = agent(PolicyKind::SmartOClock);
        a.set_power_template(flat_template(Watts::new(200.0)));
        // Exhaust every core's per-epoch budget except the lifetime budget.
        for c in 0..a.model().cores() {
            a.tracker.record(c, SimDuration::from_days(7));
        }
        let err = a
            .request_overclock(SimTime::ZERO, oc_request(4))
            .unwrap_err();
        assert_eq!(err, RejectReason::CoreBudget);
    }
}

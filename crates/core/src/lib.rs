//! # smartoclock — workload- and risk-aware overclocking management
//!
//! A from-scratch reproduction of **SmartOClock** (Stojkovic et al., ISCA
//! 2024): the first distributed overclocking-management platform designed
//! for cloud environments. The system is organized hierarchically (paper
//! Fig. 10):
//!
//! * [`wi`] — **Workload Intelligence**: per-VM local agents collect metrics
//!   (tail latency, CPU utilization) and a per-service global agent decides
//!   when VMs need overclocking, using metrics-based and/or schedule-based
//!   policies; on rejection it takes corrective action (scale-out).
//! * [`soa`] — the **Server Overclocking Agent**: admission control against
//!   power and lifetime predictions, the prioritized power feedback loop,
//!   and the exploration/exploitation state machine that lets a server
//!   safely exceed a stale budget (warnings + exponential backoff).
//! * [`goa`] — the **Global Overclocking Agent**: aggregates server profiles
//!   and splits the rack power limit *heterogeneously* according to past
//!   overclocking demand (§IV-C's worked example is a doctest).
//! * [`policy`] — the system variants evaluated in Table I: `Central`,
//!   `NaiveOClock`, `NoFeedback`, `NoWarning`, and `SmartOClock`, expressed
//!   as feature flags consumed by the agents and the cluster harness.
//! * [`infer`] — overclocking-threshold inference from workload history
//!   (§IV-A's adoption aid: "use P90 of historical value if overclocking can
//!   be performed for 10% of the time").
//! * [`messages`] — request/grant/signal types exchanged between the layers.
//! * [`config`] — tunable constants with the paper's defaults (20 W explore
//!   step, 30 s explore window, 95 % warning threshold, 15-minute
//!   exhaustion window, 100 MHz frequency steps).
//!
//! The agents are deliberately I/O-free: they consume observations and emit
//! commands, so the same code drives the real-time cluster harness
//! (`soc-cluster`), the large-scale trace simulations, and the
//! deployment-shaped threaded runtime ([`runtime`] — one sOA per thread
//! behind message channels).

#![forbid(unsafe_code)]

pub mod config;
pub mod epoch;
pub mod goa;
pub mod infer;
pub mod messages;
pub mod policy;
pub mod runtime;
pub mod soa;
pub mod wi;

pub use config::SoaConfig;
pub use epoch::EpochTracker;
pub use goa::{GlobalOverclockAgent, ServerProfile};
pub use infer::{infer_trigger, InferenceConfig};
pub use messages::{GrantId, OverclockRequest, RejectReason, SoaEvent};
pub use policy::PolicyKind;
pub use soa::ServerOverclockAgent;
pub use wi::{GlobalWiAgent, MetricKind, OverclockPolicy, WiDecision};

//! Epoch-boundary tracking for gOA budget-refresh cycles.
//!
//! The control plane is epoch-structured: the gOA recomputes budget splits
//! and the sOAs refresh lifetime allowances once per epoch (weekly in the
//! paper's evaluation, §V-B), and *between* boundaries racks evolve
//! independently. That independence is what the sharded execution engine
//! (`simcore::par`) exploits — work is only dealt out between epochs — so
//! boundary detection must be a pure function of sim time, never of
//! scheduling. [`EpochTracker`] centralizes that arithmetic: callers step
//! simulated time however they like and ask the tracker whether a step
//! crossed into a new epoch.

use simcore::time::{SimDuration, SimTime};

/// Detects epoch boundaries as simulated time advances.
///
/// Epoch `k` covers `[k·period, (k+1)·period)` from [`SimTime::ZERO`]. The
/// tracker starts in epoch 0; [`EpochTracker::advance`] reports the first
/// observation inside any later epoch. Time may step by arbitrary strides —
/// a coarse step that skips whole epochs still lands in the right one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochTracker {
    period: SimDuration,
    current: u64,
}

impl EpochTracker {
    /// Tracker with the given boundary period.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration) -> EpochTracker {
        assert!(!period.is_zero(), "epoch period must be positive");
        EpochTracker { period, current: 0 }
    }

    /// The paper's weekly budget-refresh epoch.
    pub fn weekly() -> EpochTracker {
        EpochTracker::new(SimDuration::WEEK)
    }

    /// Epoch index containing `t`.
    pub fn index_of(&self, t: SimTime) -> u64 {
        t.since(SimTime::ZERO).as_micros() / self.period.as_micros()
    }

    /// Advance to `t`; returns `Some(epoch_index)` exactly when `t` lies in
    /// a different epoch than the previous call (the hook point where the
    /// gOA recomputes splits and allowances are refreshed).
    pub fn advance(&mut self, t: SimTime) -> Option<u64> {
        let idx = self.index_of(t);
        if idx != self.current {
            self.current = idx;
            Some(idx)
        } else {
            None
        }
    }

    /// The epoch index most recently observed via [`EpochTracker::advance`].
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The boundary period.
    pub fn period(&self) -> SimDuration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_boundaries_fire_once_per_week() {
        let mut epochs = EpochTracker::weekly();
        let step = SimDuration::from_hours(6);
        let mut t = SimTime::ZERO;
        let mut fired = Vec::new();
        while t < SimTime::ZERO + SimDuration::WEEK * 3 {
            if let Some(idx) = epochs.advance(t) {
                fired.push((idx, t));
            }
            t += step;
        }
        assert_eq!(fired.len(), 2, "weeks 1 and 2 (start is already epoch 0)");
        assert_eq!(fired[0].0, 1);
        assert_eq!(fired[1].0, 2);
        assert_eq!(fired[0].1, SimTime::ZERO + SimDuration::WEEK);
        assert_eq!(epochs.current(), 2);
    }

    #[test]
    fn coarse_steps_skip_into_the_right_epoch() {
        let mut epochs = EpochTracker::new(SimDuration::DAY);
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::DAY * 5),
            Some(5)
        );
        assert_eq!(epochs.advance(SimTime::ZERO + SimDuration::DAY * 5), None);
        assert_eq!(epochs.index_of(SimTime::ZERO), 0);
        assert_eq!(epochs.period(), SimDuration::DAY);
    }

    #[test]
    fn mid_epoch_times_do_not_fire() {
        let mut epochs = EpochTracker::weekly();
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::from_days(3)),
            None
        );
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::from_days(8)),
            Some(1)
        );
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::from_days(9)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = EpochTracker::new(SimDuration::ZERO);
    }
}

//! Epoch-boundary tracking for gOA budget-refresh cycles.
//!
//! The control plane is epoch-structured: the gOA recomputes budget splits
//! and the sOAs refresh lifetime allowances once per epoch (weekly in the
//! paper's evaluation, §V-B), and *between* boundaries racks evolve
//! independently. That independence is what the sharded execution engine
//! (`simcore::par`) exploits — work is only dealt out between epochs — so
//! boundary detection must be a pure function of sim time, never of
//! scheduling. [`EpochTracker`] centralizes that arithmetic: callers step
//! simulated time however they like and ask the tracker whether a step
//! crossed into a new epoch.

use simcore::time::{SimDuration, SimTime};

/// Detects epoch boundaries as simulated time advances.
///
/// Epoch `k` covers `[k·period, (k+1)·period)` from [`SimTime::ZERO`]. The
/// tracker starts in epoch 0; [`EpochTracker::advance`] reports the first
/// observation inside any later epoch. Time may step by arbitrary strides —
/// a coarse step that skips whole epochs still lands in the right one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochTracker {
    period: SimDuration,
    current: u64,
    /// When the tracked state (budget split, allowances) was last refreshed;
    /// `None` until the first [`EpochTracker::mark_refresh`].
    last_refresh: Option<SimTime>,
}

impl EpochTracker {
    /// Tracker with the given boundary period.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration) -> EpochTracker {
        assert!(!period.is_zero(), "epoch period must be positive");
        EpochTracker {
            period,
            current: 0,
            last_refresh: None,
        }
    }

    /// The paper's weekly budget-refresh epoch.
    pub fn weekly() -> EpochTracker {
        EpochTracker::new(SimDuration::WEEK)
    }

    /// Epoch index containing `t`.
    pub fn index_of(&self, t: SimTime) -> u64 {
        t.since(SimTime::ZERO).as_micros() / self.period.as_micros()
    }

    /// Advance to `t`; returns `Some(epoch_index)` exactly when `t` lies in
    /// a different epoch than the previous call (the hook point where the
    /// gOA recomputes splits and allowances are refreshed).
    pub fn advance(&mut self, t: SimTime) -> Option<u64> {
        let idx = self.index_of(t);
        if idx != self.current {
            self.current = idx;
            Some(idx)
        } else {
            None
        }
    }

    /// The epoch index most recently observed via [`EpochTracker::advance`].
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The boundary period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Record that the tracked state was refreshed at `t` (e.g. the gOA
    /// delivered fresh budgets). Resets the staleness clock.
    pub fn mark_refresh(&mut self, t: SimTime) {
        self.last_refresh = Some(t);
    }

    /// Age of the tracked state at `now`: how long since the last
    /// [`EpochTracker::mark_refresh`]. `None` before any refresh — callers
    /// that never mark refreshes (legacy paths) see no staleness signal.
    /// During a gOA outage this is the "running on stale budgets for X"
    /// figure reported by degraded-mode telemetry.
    pub fn staleness(&self, now: SimTime) -> Option<SimDuration> {
        self.last_refresh.map(|at| now.saturating_since(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_boundaries_fire_once_per_week() {
        let mut epochs = EpochTracker::weekly();
        let step = SimDuration::from_hours(6);
        let mut t = SimTime::ZERO;
        let mut fired = Vec::new();
        while t < SimTime::ZERO + SimDuration::WEEK * 3 {
            if let Some(idx) = epochs.advance(t) {
                fired.push((idx, t));
            }
            t += step;
        }
        assert_eq!(fired.len(), 2, "weeks 1 and 2 (start is already epoch 0)");
        assert_eq!(fired[0].0, 1);
        assert_eq!(fired[1].0, 2);
        assert_eq!(fired[0].1, SimTime::ZERO + SimDuration::WEEK);
        assert_eq!(epochs.current(), 2);
    }

    #[test]
    fn coarse_steps_skip_into_the_right_epoch() {
        let mut epochs = EpochTracker::new(SimDuration::DAY);
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::DAY * 5),
            Some(5)
        );
        assert_eq!(epochs.advance(SimTime::ZERO + SimDuration::DAY * 5), None);
        assert_eq!(epochs.index_of(SimTime::ZERO), 0);
        assert_eq!(epochs.period(), SimDuration::DAY);
    }

    #[test]
    fn mid_epoch_times_do_not_fire() {
        let mut epochs = EpochTracker::weekly();
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::from_days(3)),
            None
        );
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::from_days(8)),
            Some(1)
        );
        assert_eq!(
            epochs.advance(SimTime::ZERO + SimDuration::from_days(9)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = EpochTracker::new(SimDuration::ZERO);
    }

    /// Property: stepping a horizon at any stride, a boundary fires exactly
    /// at the first observation inside each visited epoch — and when the
    /// stride divides the period, exactly *at* the epoch edge.
    #[test]
    fn boundaries_fire_exactly_at_epoch_edges() {
        let period = SimDuration::from_hours(8);
        for stride_mins in [15u64, 60, 120, 480] {
            let stride = SimDuration::from_minutes(stride_mins);
            let mut epochs = EpochTracker::new(period);
            let mut t = SimTime::ZERO;
            let end = SimTime::ZERO + SimDuration::from_days(10);
            while t <= end {
                match epochs.advance(t) {
                    Some(idx) => {
                        // A firing observation is the first one at or past
                        // the edge; with a dividing stride it *is* the edge.
                        assert_eq!(epochs.index_of(t), idx);
                        if period.as_micros().is_multiple_of(stride.as_micros()) {
                            assert!(
                                t.since(SimTime::ZERO)
                                    .as_micros()
                                    .is_multiple_of(period.as_micros()),
                                "dividing stride must land firings on edges"
                            );
                        }
                    }
                    None => {
                        assert_eq!(
                            epochs.index_of(t),
                            epochs.current(),
                            "non-firing observations stay in the current epoch"
                        );
                    }
                }
                t += stride;
            }
        }
    }

    /// Property: tick 0 never fires (the tracker starts in epoch 0), and the
    /// last instant of an epoch still belongs to it — no off-by-one at
    /// either end.
    #[test]
    fn no_off_by_one_at_first_and_last_tick() {
        let mut epochs = EpochTracker::new(SimDuration::DAY);
        assert_eq!(epochs.advance(SimTime::ZERO), None, "tick 0 must not fire");
        // Last representable instant of epoch 0.
        let last_of_epoch0 = SimTime::ZERO + SimDuration::DAY - SimDuration::from_micros(1);
        assert_eq!(epochs.advance(last_of_epoch0), None);
        // The very next microsecond is the edge.
        assert_eq!(
            epochs.advance(last_of_epoch0 + SimDuration::from_micros(1)),
            Some(1)
        );
        // And the last instant of epoch 1 again does not fire.
        let last_of_epoch1 = SimTime::ZERO + SimDuration::DAY * 2 - SimDuration::from_micros(1);
        assert_eq!(epochs.advance(last_of_epoch1), None);
    }

    /// Property: staleness is zero at a refresh, grows monotonically with
    /// time between refreshes, and resets on the next refresh.
    #[test]
    fn staleness_is_monotone_between_refreshes() {
        let mut epochs = EpochTracker::weekly();
        assert_eq!(epochs.staleness(SimTime::ZERO), None, "no refresh yet");
        let t0 = SimTime::ZERO + SimDuration::from_hours(1);
        epochs.mark_refresh(t0);
        assert_eq!(epochs.staleness(t0), Some(SimDuration::ZERO));
        let mut prev = SimDuration::ZERO;
        for mins in [1u64, 5, 30, 120, 600] {
            let age = epochs
                .staleness(t0 + SimDuration::from_minutes(mins))
                .expect("refresh marked");
            assert!(age >= prev, "staleness must be monotone in time");
            assert_eq!(age, SimDuration::from_minutes(mins));
            prev = age;
        }
        // Querying *before* the refresh instant saturates to zero rather
        // than underflowing.
        assert_eq!(
            epochs.staleness(SimTime::ZERO),
            Some(SimDuration::ZERO),
            "pre-refresh queries saturate"
        );
        let t1 = t0 + SimDuration::from_hours(4);
        epochs.mark_refresh(t1);
        assert_eq!(epochs.staleness(t1), Some(SimDuration::ZERO));
        assert_eq!(
            epochs.staleness(t1 + SimDuration::SECOND),
            Some(SimDuration::SECOND)
        );
    }
}

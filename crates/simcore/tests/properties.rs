//! Property-style tests for the simcore statistics primitives.
//!
//! No external property-testing framework: cases are generated in seeded
//! `Pcg32` loops, so the suite is deterministic, dependency-free, and every
//! failure reproduces from the loop seed printed in the assertion message.
//!
//! Pinned invariants:
//!
//! * quantiles are monotone in `q` and bounded by `[min, max]` — for both
//!   the exact `Ecdf` and the sketching `Histogram`;
//! * `Histogram::merge` is associative and equivalent to recording the
//!   union of samples directly (the property the sharded telemetry merge
//!   in `soc-cluster` relies on);
//! * `Pcg32` streams derived from distinct `(seed, stream)` pairs are
//!   independent, and equal pairs reproduce bit-identical sequences (the
//!   property the per-rack shard RNG derivation relies on).

use simcore::hist::Histogram;
use simcore::rng::Pcg32;
use simcore::stats::{percentile, Ecdf};

/// Draw `n` non-negative samples from a mix of shapes so buckets spread
/// over several orders of magnitude.
fn samples(rng: &mut Pcg32, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match i % 4 {
            0 => rng.gen_range_f64(0.0, 1.0),
            1 => rng.gen_range_f64(1.0, 100.0),
            2 => rng.sample_exp(0.01),
            _ => rng.sample_lognormal(2.0, 1.0),
        })
        .collect()
}

#[test]
fn ecdf_quantiles_are_monotone_and_bounded() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(1000 + case);
        let n = 1 + rng.gen_index(400);
        let xs = samples(&mut rng, n);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ecdf = Ecdf::from_samples(&xs);
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=100 {
            let q = f64::from(step) / 100.0;
            let v = ecdf.quantile(q);
            assert!(v >= prev, "case {case}: quantile not monotone at q={q}");
            assert!(
                (min..=max).contains(&v),
                "case {case}: quantile({q})={v} outside [{min}, {max}]"
            );
            prev = v;
        }
        assert_eq!(ecdf.quantile(0.0), min, "case {case}: q=0 must be the min");
        assert_eq!(ecdf.quantile(1.0), max, "case {case}: q=1 must be the max");
    }
}

#[test]
fn percentile_agrees_with_ecdf_and_is_bounded() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(2000 + case);
        let n = 1 + rng.gen_index(200);
        let xs = samples(&mut rng, n);
        let ecdf = Ecdf::from_samples(&xs);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            // `percentile` is scaled 0–100, `Ecdf::quantile` 0–1; same math.
            let v = percentile(&xs, q * 100.0);
            assert_eq!(
                v,
                ecdf.quantile(q),
                "case {case}: percentile and Ecdf::quantile disagree at q={q}"
            );
        }
    }
}

#[test]
fn histogram_quantiles_are_monotone_and_bounded() {
    for case in 0..30u64 {
        let mut rng = Pcg32::seed_from_u64(3000 + case);
        let n = 1 + rng.gen_index(500);
        let xs = samples(&mut rng, n);
        let mut h = Histogram::new(0.01);
        for &x in &xs {
            h.record(x);
        }
        // Sketch buckets widen values by at most the relative precision.
        let lo = h.min() * (1.0 - 0.011);
        let hi = h.max() * (1.0 + 0.011);
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=100 {
            let q = f64::from(step) / 100.0;
            let v = h.quantile(q);
            assert!(
                v >= prev,
                "case {case}: histogram quantile not monotone at q={q}"
            );
            assert!(
                v >= lo && v <= hi,
                "case {case}: quantile({q})={v} outside [{lo}, {hi}]"
            );
            prev = v;
        }
    }
}

#[test]
fn histogram_merge_is_associative() {
    for case in 0..30u64 {
        let mut rng = Pcg32::seed_from_u64(4000 + case);
        let parts: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                let n = 1 + rng.gen_index(150);
                samples(&mut rng, n)
            })
            .collect();
        let hist_of = |xs: &[f64]| {
            let mut h = Histogram::new(0.01);
            for &x in xs {
                h.record(x);
            }
            h
        };
        let (a, b, c) = (hist_of(&parts[0]), hist_of(&parts[1]), hist_of(&parts[2]));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count(), "case {case}: counts differ");
        assert_eq!(left.min(), right.min(), "case {case}: min differs");
        assert_eq!(left.max(), right.max(), "case {case}: max differs");
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(
                left.quantile(q),
                right.quantile(q),
                "case {case}: quantile({q}) differs between associations"
            );
        }
        // Bucket sums are float additions in different orders; means agree
        // only to rounding.
        assert!(
            (left.mean() - right.mean()).abs() <= 1e-9 * left.mean().abs().max(1.0),
            "case {case}: means differ beyond float tolerance"
        );
    }
}

#[test]
fn histogram_merge_equals_recording_the_union() {
    for case in 0..30u64 {
        let mut rng = Pcg32::seed_from_u64(5000 + case);
        let nx = 1 + rng.gen_index(200);
        let xs = samples(&mut rng, nx);
        let ny = 1 + rng.gen_index(200);
        let ys = samples(&mut rng, ny);
        let mut merged = Histogram::new(0.01);
        for &x in &xs {
            merged.record(x);
        }
        let mut other = Histogram::new(0.01);
        for &y in &ys {
            other.record(y);
        }
        merged.merge(&other);
        let mut direct = Histogram::new(0.01);
        for &v in xs.iter().chain(ys.iter()) {
            direct.record(v);
        }
        assert_eq!(merged.count(), direct.count(), "case {case}: counts differ");
        assert_eq!(merged.min(), direct.min(), "case {case}: min differs");
        assert_eq!(merged.max(), direct.max(), "case {case}: max differs");
        for q in [0.0, 0.1, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                merged.quantile(q),
                direct.quantile(q),
                "case {case}: quantile({q}) differs from direct recording"
            );
        }
    }
}

#[test]
fn rng_streams_reproduce_and_distinct_pairs_diverge() {
    // Equal (seed, stream) pairs → bit-identical sequences: the shard layer
    // derives one stream per rack and replays it on any thread count.
    for seed in [0u64, 1, 42, u64::MAX] {
        for stream in [0u64, 1, 7, 1 << 40] {
            let a: Vec<u64> = {
                let mut r = Pcg32::new(seed, stream);
                (0..64).map(|_| r.next_u64()).collect()
            };
            let b: Vec<u64> = {
                let mut r = Pcg32::new(seed, stream);
                (0..64).map(|_| r.next_u64()).collect()
            };
            assert_eq!(a, b, "({seed}, {stream}) must reproduce exactly");
        }
    }
    // Distinct (seed, stream) pairs → distinct sequences. 64 draws of 64
    // bits colliding by chance is ~2^-4096; any equality is a derivation
    // bug (e.g. the stream being ignored).
    let pairs: Vec<(u64, u64)> = (0..8)
        .flat_map(|seed| (0..8).map(move |rack| (seed, rack)))
        .collect();
    let sequences: Vec<Vec<u64>> = pairs
        .iter()
        .map(|&(seed, rack)| {
            let mut r = Pcg32::new(seed, rack);
            (0..64).map(|_| r.next_u64()).collect()
        })
        .collect();
    for i in 0..sequences.len() {
        for j in (i + 1)..sequences.len() {
            assert_ne!(
                sequences[i], sequences[j],
                "pairs {:?} and {:?} produced the same stream",
                pairs[i], pairs[j]
            );
        }
    }
}

#[test]
fn forked_rng_does_not_echo_the_parent() {
    for seed in 0..16u64 {
        let mut parent = Pcg32::seed_from_u64(seed);
        let mut fork = parent.fork(1);
        let parent_seq: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let fork_seq: Vec<u64> = (0..32).map(|_| fork.next_u64()).collect();
        assert_ne!(parent_seq, fork_seq, "seed {seed}: fork mirrors its parent");
    }
}

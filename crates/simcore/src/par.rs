//! Deterministic sharded parallel execution.
//!
//! The large-scale experiments are embarrassingly parallel between gOA
//! budget-reconciliation epochs: racks only interact at epoch boundaries, so
//! whole racks (or whole independent simulations) can run on worker threads.
//! What makes naive threading unacceptable here is *ordering*: the workspace
//! guarantees byte-identical traces per seed, and scheduler-dependent
//! interleaving breaks that. This module is the one sanctioned threading
//! primitive for sim-state crates (soc-lint D005 forbids `std::thread` and
//! channels elsewhere): it shards work deterministically, runs shards on
//! scoped worker threads, and merges results back **in canonical input
//! order**, so the output of [`par_map`] is a pure function of its inputs —
//! independent of thread count, core count, and scheduling.
//!
//! Design rules that keep this true:
//!
//! * every item knows its input index; results are reassembled by index;
//! * workers receive disjoint item sets dealt round-robin (static
//!   partitioning — no work stealing, no shared queues);
//! * workers must not share mutable state; each returns its own results
//!   (callers buffer telemetry per shard and merge after the join);
//! * a panicking worker propagates its payload to the caller after all
//!   workers have been joined, exactly like the inline path.
//!
//! ```
//! use simcore::par::par_map;
//!
//! let squares = par_map(4, (0u64..100).collect(), |_, x| x * x);
//! assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
//! ```

use std::num::NonZeroUsize;
use std::thread;

/// Number of hardware threads available to this process (at least 1).
///
/// This is the default worker count for `--threads` in the bench binaries.
/// It never influences simulation *results* — only how work is dealt — so
/// reading it does not compromise determinism.
pub fn available_parallelism() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a requested thread count: `0` means "use
/// [`available_parallelism`]", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

/// Map `f` over `items` on up to `threads` worker threads, preserving input
/// order in the output.
///
/// `f` receives `(input_index, item)` and must be a pure function of them
/// (plus captured shared immutable state): the contract is that
/// `par_map(t, items, f)` returns the same bytes for every `t`. Items are
/// dealt round-robin across workers (item `i` goes to worker `i % workers`),
/// which load-balances the common case of uniform per-item cost without any
/// run-time-dependent scheduling.
///
/// `threads == 0` resolves to [`available_parallelism`]; `threads <= 1` (or
/// fewer than two items) runs inline on the calling thread with no thread
/// machinery at all.
///
/// # Panics
/// Re-raises the payload of the first (lowest worker index) panicking
/// worker after all workers have been joined.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Deal items round-robin so every worker sees a representative slice of
    // the index space (contiguous chunking would put all "expensive" late
    // items on the last worker when cost grows with index).
    let mut shards: Vec<Vec<(usize, T)>> = (0..workers)
        .map(|_| Vec::with_capacity(n / workers + 1))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        shards[i % workers].push((i, item));
    }

    let f = &f;
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .into_iter()
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                // Propagate the worker's own panic payload; `thread::scope`
                // has already joined the remaining workers by the time the
                // unwind leaves the scope.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Canonical merge: results come back grouped by worker; restore input
    // order. Indices are unique, so an unstable sort is deterministic.
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 3, 4, 7] {
            let out = par_map(threads, (0u64..50).collect(), |i, x| {
                assert_eq!(i as u64, x, "index must match the input position");
                x * 3
            });
            assert_eq!(out, (0u64..50).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn matches_inline_map_for_any_thread_count() {
        // A seeded per-item computation: the parallel result must be
        // byte-identical to the serial one for every worker count.
        let work = |_: usize, seed: u64| {
            let mut rng = Pcg32::seed_from_u64(seed);
            (0..100).map(|_| rng.next_f64()).sum::<f64>()
        };
        let serial = par_map(1, (0u64..33).collect(), work);
        for threads in [2, 4, 8, 33, 64] {
            let parallel = par_map(threads, (0u64..33).collect(), work);
            assert_eq!(serial, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u32> = par_map(4, Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(4, vec![9u32], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map(64, vec![1, 2, 3], |_, x| x), vec![1, 2, 3]);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(available_parallelism() >= 1);
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
        let out = par_map(0, (0u32..10).collect(), |_, x| x);
        assert_eq!(out, (0u32..10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(4, (0u32..16).collect(), |_, x| {
                assert!(x != 11, "boom on item {x}");
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom on item 11"), "got: {msg}");
    }
}

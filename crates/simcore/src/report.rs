//! Plain-text table and CSV rendering for the experiment binaries.
//!
//! Every figure/table regenerator in `soc-bench` prints its data through
//! [`Table`], so the output format (aligned columns for humans, CSV for
//! scripts) is consistent across the whole evaluation.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// ```
/// use simcore::report::Table;
///
/// let mut t = Table::new(&["system", "p99 (ms)"]);
/// t.row(&["Baseline".to_string(), format!("{:.2}", 12.5)]);
/// let text = t.render();
/// assert!(text.contains("Baseline"));
/// assert!(text.contains("12.50"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    ///
    /// # Panics
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Table {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable items.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned, human-readable text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Format a float with fixed precision, rendering NaN as `-`.
pub fn fmt_f64(x: f64, precision: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{:.*}", precision, x)
    }
}

/// Format a ratio as a percentage string, e.g. `0.123 -> "12.3%"`.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22222");
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_quotes_newlines_and_leaves_plain_cells_bare() {
        let mut t = Table::new(&["k", "v"]);
        t.row(&["line1\nline2".into(), "plain".into()]);
        let csv = t.to_csv();
        // The embedded newline is preserved inside one quoted field, so the
        // record spans two physical lines; the plain cell stays unquoted.
        assert!(csv.contains("\"line1\nline2\",plain\n"));
        assert_eq!(csv.lines().next().unwrap(), "k,v");
    }

    #[test]
    fn csv_header_cells_are_escaped_too() {
        let mut t = Table::new(&["name, unit", "v"]);
        t.row(&["x".into(), "1".into()]);
        assert_eq!(t.to_csv().lines().next().unwrap(), "\"name, unit\",v");
    }

    #[test]
    fn empty_table_renders_headers_and_rule_only() {
        let t = Table::new(&["only"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines, vec!["only", "----"]);
        assert_eq!(t.to_csv(), "only\n");
    }

    #[test]
    fn render_pads_to_widest_cell_not_header() {
        let mut t = Table::new(&["h", "x"]);
        t.row(&["wide-cell".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        // Header column is padded out to the widest data cell.
        assert_eq!(lines[0], "h          x");
        assert_eq!(lines[1].len(), "wide-cell".len() + 2 + 1);
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new(&["n"]);
        t.row_display(&[42]);
        assert!(t.render().contains("42"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
        assert_eq!(fmt_pct(0.3041), "30.4%");
    }
}

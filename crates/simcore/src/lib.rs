//! # simcore — simulation substrate for the SmartOClock reproduction
//!
//! This crate provides the deterministic building blocks every other crate in
//! the workspace rests on:
//!
//! * [`time`] — simulated time ([`SimTime`], [`SimDuration`]) with calendar
//!   helpers (time-of-day, weekday) used by power templates and epochs.
//! * [`event`] — a deterministic discrete-event queue ([`event::EventQueue`]).
//! * [`faults`] — seeded, sim-time fault schedules ([`faults::FaultPlan`])
//!   for control-plane chaos testing; pure functions of the plan seed, so
//!   fault timelines are byte-reproducible and shard-order independent.
//! * [`engine`] — a minimal discrete-event execution loop ([`engine::Engine`]).
//! * [`rng`] — a seeded PCG32 generator ([`rng::Pcg32`]) plus the sampling
//!   distributions the workload and trace generators need.
//! * [`stats`] — percentiles, RMSE, CDFs, and summary statistics.
//! * [`hist`] — log-bucketed histograms for high-volume latency recording.
//! * [`par`] — deterministic sharded parallel execution ([`par::par_map`]):
//!   scoped worker threads with canonical-order result merge, so thread
//!   count never changes a single output byte.
//! * [`series`] — regular time series with time-of-day aggregation.
//! * [`report`] — plain-text table/CSV rendering for experiment binaries.
//!
//! Everything here is pure Rust with no I/O and no global state; two runs with
//! the same seed produce byte-identical results.
//!
//! ```
//! use simcore::rng::Pcg32;
//! use simcore::stats::percentile;
//!
//! let mut rng = Pcg32::seed_from_u64(7);
//! let xs: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
//! let p99 = percentile(&xs, 99.0);
//! assert!(p99 > 0.9 && p99 <= 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod faults;
pub mod hist;
pub mod par;
pub mod report;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::Pcg32;
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime, Weekday};

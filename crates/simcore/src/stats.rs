//! Statistics used throughout the evaluation: percentiles, RMSE, CDFs,
//! normalization, and streaming summaries.
//!
//! The paper reports P50/P99 latencies and power utilizations (Figs. 2, 5,
//! 12), RMSE of power predictions (Fig. 8), and CDFs of prediction error
//! (Fig. 15); the helpers here implement those metrics exactly once so every
//! crate agrees on definitions.

use serde::{Deserialize, Serialize};

/// Linearly-interpolated percentile of an unsorted slice (`p` in `[0, 100]`).
///
/// Uses the standard "linear interpolation between closest ranks" definition
/// (NumPy default).
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
///
/// ```
/// use simcore::stats::percentile;
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    assert!(xs.iter().all(|x| !x.is_nan()), "NaN in percentile input");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice; see [`percentile`].
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile_of_sorted(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.len() == 1 {
        return xs[0];
    }
    let rank = p / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    xs[lo] + (xs[hi] - xs[lo]) * frac
}

/// Arithmetic mean.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-squared error between predictions and observations.
///
/// This is the accuracy metric the paper uses for power templates (Fig. 8:
/// "50% and 99% of the racks have an RMSE lower than 1.95W and 5.11W").
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "rmse inputs must have equal length"
    );
    assert!(!predicted.is_empty(), "rmse of empty slices");
    let se: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum();
    (se / predicted.len() as f64).sqrt()
}

/// Mean error (bias): positive when predictions overshoot.
///
/// Fig. 15 plots per-technique mean prediction error; conservative templates
/// (FlatMax) show positive bias, opportunistic ones (FlatMed) negative.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mean_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "mean_error inputs must have equal length"
    );
    assert!(!predicted.is_empty(), "mean_error of empty slices");
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| p - a)
        .sum::<f64>()
        / predicted.len() as f64
}

/// An empirical cumulative distribution function.
///
/// ```
/// use simcore::stats::Ecdf;
/// let cdf = Ecdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.0), 1.0);
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from raw samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(samples: &[f64]) -> Ecdf {
        assert!(!samples.is_empty(), "ECDF of an empty sample set");
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN in ECDF input");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: ECDFs cannot be empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` in `[0, 1]` (linear interpolation).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Evenly spaced `(value, cumulative_fraction)` points for plotting,
    /// including both endpoints.
    ///
    /// # Panics
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Streaming summary (count/mean/min/max/variance) via Welford's algorithm.
///
/// ```
/// use simcore::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation.
    ///
    /// # Panics
    /// Panics if no observations were recorded.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of an empty summary");
        self.min
    }

    /// Maximum observation.
    ///
    /// # Panics
    /// Panics if no observations were recorded.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of an empty summary");
        self.max
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Normalize values so the maximum becomes `1.0`.
///
/// Returns all zeros if the maximum is zero. Used by figure generators that
/// plot "utilization normalized to peak" (Figs. 1, 9).
pub fn normalize_to_peak(xs: &[f64]) -> Vec<f64> {
    let peak = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !peak.is_finite() || peak == 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| x / peak).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 75.0) - 32.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn rmse_zero_for_perfect_prediction() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&xs, &xs), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        let pred = [2.0, 2.0];
        let act = [0.0, 0.0];
        assert_eq!(rmse(&pred, &act), 2.0);
    }

    #[test]
    fn mean_error_sign_convention() {
        assert!(mean_error(&[3.0], &[1.0]) > 0.0); // overprediction positive
        assert!(mean_error(&[1.0], &[3.0]) < 0.0);
    }

    #[test]
    fn ecdf_fractions() {
        let cdf = Ecdf::from_samples(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn ecdf_curve_endpoints() {
        let cdf = Ecdf::from_samples(&[5.0, 1.0, 3.0]);
        let curve = cdf.curve(5);
        assert_eq!(curve.first().unwrap(), &(1.0, 0.0));
        assert_eq!(curve.last().unwrap(), &(5.0, 1.0));
    }

    #[test]
    fn summary_matches_batch() {
        let xs = [1.0, 4.0, 9.0, 16.0, 25.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 25.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let mut sa = Summary::new();
        a.iter().for_each(|&x| sa.record(x));
        let mut sb = Summary::new();
        b.iter().for_each(|&x| sb.record(x));
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(&b).cloned().collect();
        assert!((sa.mean() - mean(&all)).abs() < 1e-12);
        assert!((sa.variance() - std_dev(&all).powi(2)).abs() < 1e-9);
        assert_eq!(sa.count(), 5);
    }

    #[test]
    fn normalize_handles_zero_peak() {
        assert_eq!(normalize_to_peak(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(normalize_to_peak(&[1.0, 2.0]), vec![0.5, 1.0]);
    }

    proptest! {
        #[test]
        fn percentile_is_monotone(
            mut xs in prop::collection::vec(-1e6..1e6f64, 1..100),
            p1 in 0.0..100.0f64,
            p2 in 0.0..100.0f64,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile_of_sorted(&xs, lo) <= percentile_of_sorted(&xs, hi) + 1e-9);
        }

        #[test]
        fn percentile_within_range(xs in prop::collection::vec(-1e6..1e6f64, 1..100), p in 0.0..100.0f64) {
            let v = percentile(&xs, p);
            let mn = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= mn - 1e-9 && v <= mx + 1e-9);
        }

        #[test]
        fn rmse_nonnegative_and_bounded_by_max_abs_error(
            pairs in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 1..50)
        ) {
            let pred: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let act: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let e = rmse(&pred, &act);
            let max_abs = pred.iter().zip(&act).map(|(p, a)| (p - a).abs()).fold(0.0, f64::max);
            prop_assert!(e >= 0.0);
            prop_assert!(e <= max_abs + 1e-9);
        }

        #[test]
        fn ecdf_quantile_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..50), q in 0.0..1.0f64) {
            let cdf = Ecdf::from_samples(&xs);
            prop_assert!(cdf.quantile(q) <= cdf.quantile(1.0) + 1e-9);
            prop_assert!(cdf.quantile(q) >= cdf.quantile(0.0) - 1e-9);
        }
    }
}

//! Deterministic random number generation.
//!
//! All stochastic behaviour in the workspace flows through [`Pcg32`], a
//! permuted-congruential generator (PCG-XSH-RR 64/32). It is small, fast, has
//! good statistical quality for simulation purposes, and — crucially for a
//! reproduction artifact — produces identical streams on every platform.
//!
//! The sampling methods ([`Pcg32::sample_normal`], [`Pcg32::sample_exp`], …)
//! cover every distribution the trace generator and queueing simulator use.

use std::f64::consts::PI;

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

/// A PCG-XSH-RR 64/32 pseudo-random generator.
///
/// ```
/// use simcore::rng::Pcg32;
///
/// let mut a = Pcg32::seed_from_u64(42);
/// let mut b = Pcg32::seed_from_u64(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // identical streams
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Create a generator from a 64-bit seed (stream constant fixed).
    pub fn seed_from_u64(seed: u64) -> Pcg32 {
        Pcg32::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Create a generator with an explicit stream selector.
    ///
    /// Different `stream` values yield statistically independent sequences
    /// for the same seed; the workspace derives per-entity streams this way
    /// (e.g. one stream per simulated server).
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Derive a child generator; used to give independent streams to
    /// sub-components without sharing mutable state.
    pub fn fork(&mut self, salt: u64) -> Pcg32 {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Pcg32::new(seed, salt.wrapping_add(0x5851_f42d_4c95_7f2d))
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)` (Lemire-style rejection-free mapping;
    /// bias is negligible for simulation ranges).
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        let span = hi - lo;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform index in `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty range");
        self.gen_range_u64(0, len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller.
    pub fn sample_standard_normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative.
    pub fn sample_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.sample_standard_normal()
    }

    /// Exponential with the given rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    pub fn sample_exp(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Log-normal parameterized by the underlying normal's `mu` and `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative.
    pub fn sample_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        (mu + sigma * self.sample_standard_normal()).exp()
    }

    /// Poisson-distributed count with the given mean (Knuth for small means,
    /// normal approximation above 64 to stay O(1)).
    ///
    /// # Panics
    /// Panics if `mean` is negative or not finite.
    pub fn sample_poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "mean must be finite and non-negative"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let x = self.sample_normal(mean, mean.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Bounded Pareto sample in `[scale, cap]` with shape `alpha`; used for
    /// heavy-tailed service times in the microservice model.
    ///
    /// # Panics
    /// Panics if `alpha <= 0`, `scale <= 0`, or `cap < scale`.
    pub fn sample_bounded_pareto(&mut self, alpha: f64, scale: f64, cap: f64) -> f64 {
        assert!(
            alpha > 0.0 && scale > 0.0 && cap >= scale,
            "invalid Pareto parameters"
        );
        let u = self.next_f64();
        let ha = cap.powf(-alpha);
        let la = scale.powf(-alpha);
        (u * (ha - la) + la).powf(-1.0 / alpha)
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed_from_u64(123);
        let mut b = Pcg32::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_continuation() {
        let mut parent = Pcg32::seed_from_u64(7);
        let mut child = parent.fork(1);
        let c: Vec<u32> = (0..4).map(|_| child.next_u32()).collect();
        let p: Vec<u32> = (0..4).map(|_| parent.next_u32()).collect();
        assert_ne!(c, p);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_f64_mean_near_half() {
        let mut rng = Pcg32::seed_from_u64(6);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.next_f64()).collect();
        let (mean, _) = mean_and_var(&xs);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_u64_bounds() {
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed_from_u64(11);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.sample_normal(3.0, 2.0)).collect();
        let (mean, var) = mean_and_var(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Pcg32::seed_from_u64(12);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.sample_exp(2.0)).collect();
        let (mean, _) = mean_and_var(&xs);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = Pcg32::seed_from_u64(13);
        let small: Vec<f64> = (0..20_000)
            .map(|_| rng.sample_poisson(3.5) as f64)
            .collect();
        let (m, _) = mean_and_var(&small);
        assert!((m - 3.5).abs() < 0.1, "small mean {m}");
        let large: Vec<f64> = (0..20_000)
            .map(|_| rng.sample_poisson(200.0) as f64)
            .collect();
        let (m, _) = mean_and_var(&large);
        assert!((m - 200.0).abs() < 1.0, "large mean {m}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = Pcg32::seed_from_u64(14);
        for _ in 0..10_000 {
            let x = rng.sample_bounded_pareto(1.5, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(15);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = Pcg32::seed_from_u64(16);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exp_rejects_nonpositive_rate() {
        let mut rng = Pcg32::seed_from_u64(1);
        let _ = rng.sample_exp(0.0);
    }
}

//! Deterministic, seeded fault injection for the control plane.
//!
//! The paper's robustness argument (§III-Q5) is that decentralized budget
//! enforcement keeps servers safe when the control plane misbehaves: sOAs
//! keep enforcing their *last assigned* budget while the gOA is unreachable,
//! dropped budget messages merely leave a server on a stale limit, and a
//! restarted sOA re-joins conservatively at the default frequency. This
//! module provides the fault *schedule* that the simulators replay to test
//! that claim.
//!
//! Two kinds of faults are modelled, both pure functions of the plan seed:
//!
//! * **Windows** — gOA outages occupy `[start, end)` intervals drawn up
//!   front from a dedicated [`Pcg32`] stream ([`FaultPlan::generate`]).
//! * **Point faults** — per-`(instant, entity)` events (message drops,
//!   delays, telemetry gaps, prediction noise, sOA restarts) decided by a
//!   stateless hash of `(seed, kind, t, entity)`. Because no generator
//!   state is consumed at query time, answers are independent of query
//!   *order* — a sharded run asking rack 7 before rack 3 sees exactly the
//!   bytes a serial run sees, which is what lets fault plans compose with
//!   `--threads N` byte-identity for free.
//!
//! A zero-fault plan ([`FaultPlanConfig::none`], the `Default`) answers
//! `false`/`1.0`/zero-delay everywhere without hashing anything, so wiring
//! the faults layer into a simulator leaves fault-free runs byte-identical.

use crate::rng::Pcg32;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Dedicated PCG stream for fault-window generation, disjoint from the
/// workload/trace streams so adding faults never perturbs trace generation.
const FAULT_STREAM: u64 = 0xFA17;

/// Salts separating the point-fault hash families.
const SALT_BUDGET_DROP: u64 = 0xD201;
const SALT_BUDGET_DELAY: u64 = 0xD202;
const SALT_TELEMETRY_GAP: u64 = 0xD203;
const SALT_PREDICTION_NOISE: u64 = 0xD204;
const SALT_SOA_RESTART: u64 = 0xD205;

/// The kinds of control-plane faults a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The gOA is unreachable: no budget recomputation; sOAs run on stale
    /// budgets.
    GoaOutage,
    /// A budget-update message to one server is lost.
    BudgetDrop,
    /// A budget-update message to one server arrives late.
    BudgetDelay,
    /// A WI telemetry window is lost: the sOA sees no demand and issues no
    /// overclock request for that server this step.
    TelemetryGap,
    /// Prediction error injected into the power templates (static bias
    /// and/or per-step noise).
    PredictionError,
    /// The sOA process restarts: volatile control state is lost and the
    /// server re-joins conservatively at the default frequency.
    SoaRestart,
}

impl FaultKind {
    /// Stable lowercase label for telemetry fields.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::GoaOutage => "goa_outage",
            FaultKind::BudgetDrop => "budget_drop",
            FaultKind::BudgetDelay => "budget_delay",
            FaultKind::TelemetryGap => "telemetry_gap",
            FaultKind::PredictionError => "prediction_error",
            FaultKind::SoaRestart => "soa_restart",
        }
    }
}

/// A half-open `[start, end)` window during which a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First affected instant.
    pub start: SimTime,
    /// First instant no longer affected.
    pub end: SimTime,
}

impl FaultWindow {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Window length.
    pub fn len(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Declarative description of a fault schedule. Fully serializable so an
/// experiment's fault plan can be pinned in a config file or golden test.
///
/// The default ([`FaultPlanConfig::none`]) injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Seed of the fault schedule (independent of the workload seed).
    pub seed: u64,
    /// Number of gOA outage windows to place in the horizon.
    pub goa_outages: usize,
    /// Length of each gOA outage window.
    pub goa_outage_len: SimDuration,
    /// Per-(step, server) probability that a budget update is dropped.
    pub budget_drop_prob: f64,
    /// Per-(step, server) probability that a budget update is delayed.
    pub budget_delay_prob: f64,
    /// How late a delayed budget update arrives.
    pub budget_delay: SimDuration,
    /// Per-(step, server) probability of a WI telemetry gap.
    pub telemetry_gap_prob: f64,
    /// Static multiplicative bias applied to power-template predictions
    /// (`1.0` = unbiased; `1.1` = templates over-predict by 10 %).
    pub prediction_bias: f64,
    /// Amplitude of per-(step, server) multiplicative prediction noise:
    /// predictions are scaled by a factor in `[1 - a, 1 + a]` (`0.0` = none).
    pub prediction_noise: f64,
    /// Per-(step, server) probability that the sOA restarts and loses its
    /// volatile control state.
    pub soa_restart_prob: f64,
}

impl FaultPlanConfig {
    /// The zero-fault plan: every query answers "no fault".
    pub fn none() -> FaultPlanConfig {
        FaultPlanConfig {
            seed: 0,
            goa_outages: 0,
            goa_outage_len: SimDuration::ZERO,
            budget_drop_prob: 0.0,
            budget_delay_prob: 0.0,
            budget_delay: SimDuration::ZERO,
            telemetry_gap_prob: 0.0,
            prediction_bias: 1.0,
            prediction_noise: 0.0,
            soa_restart_prob: 0.0,
        }
    }

    /// Whether this configuration injects nothing at all.
    pub fn is_noop(&self) -> bool {
        (self.goa_outages == 0 || self.goa_outage_len.is_zero())
            && self.budget_drop_prob <= 0.0
            && (self.budget_delay_prob <= 0.0 || self.budget_delay.is_zero())
            && self.telemetry_gap_prob <= 0.0
            && self.prediction_bias == 1.0
            && self.prediction_noise <= 0.0
            && self.soa_restart_prob <= 0.0
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`, the noise amplitude is
    /// outside `[0, 1]`, or the bias is not positive and finite.
    pub fn validate(&self) {
        for (name, p) in [
            ("budget_drop_prob", self.budget_drop_prob),
            ("budget_delay_prob", self.budget_delay_prob),
            ("telemetry_gap_prob", self.telemetry_gap_prob),
            ("soa_restart_prob", self.soa_restart_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        assert!(
            (0.0..=1.0).contains(&self.prediction_noise),
            "prediction_noise must be in [0, 1]"
        );
        assert!(
            self.prediction_bias.is_finite() && self.prediction_bias > 0.0,
            "prediction_bias must be positive and finite"
        );
    }
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig::none()
    }
}

/// A realized fault schedule over a simulation horizon.
///
/// Construction pre-draws the gOA outage windows; all point-fault queries
/// are stateless hashes. Same config + horizon ⇒ byte-identical plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultPlanConfig,
    outages: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The zero-fault plan.
    pub fn none() -> FaultPlan {
        FaultPlan {
            config: FaultPlanConfig::none(),
            outages: Vec::new(),
        }
    }

    /// Realize `config` over the horizon `[start, end)`.
    ///
    /// Outage windows are drawn uniformly inside the horizon from a
    /// dedicated [`Pcg32`] stream seeded by `config.seed` and sorted by
    /// start time; windows may overlap (overlaps simply merge in effect).
    /// Outages that cannot fit (horizon shorter than the outage length) are
    /// not placed.
    ///
    /// # Panics
    /// Panics if `config` fails [`FaultPlanConfig::validate`].
    pub fn generate(config: &FaultPlanConfig, start: SimTime, end: SimTime) -> FaultPlan {
        config.validate();
        let horizon = end.saturating_since(start);
        let mut outages = Vec::new();
        if config.goa_outages > 0
            && !config.goa_outage_len.is_zero()
            && horizon >= config.goa_outage_len
        {
            let slack = (horizon - config.goa_outage_len).as_micros();
            let mut rng = Pcg32::new(config.seed, FAULT_STREAM);
            for _ in 0..config.goa_outages {
                let offset = if slack == 0 {
                    0
                } else {
                    rng.gen_range_u64(0, slack + 1)
                };
                let ws = start + SimDuration::from_micros(offset);
                outages.push(FaultWindow {
                    start: ws,
                    end: ws + config.goa_outage_len,
                });
            }
            outages.sort_by_key(|w| (w.start, w.end));
        }
        FaultPlan {
            config: config.clone(),
            outages,
        }
    }

    /// The configuration this plan realizes.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    /// The realized gOA outage windows, sorted by start time.
    pub fn outages(&self) -> &[FaultWindow] {
        &self.outages
    }

    /// Whether this plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.outages.is_empty() && self.config.is_noop()
    }

    /// Canonical entity key for per-server point faults.
    pub fn entity_id(rack: usize, server: usize) -> u64 {
        ((rack as u64) << 32) | (server as u64 & 0xFFFF_FFFF)
    }

    /// Whether the gOA is unreachable at `t`.
    pub fn goa_unreachable(&self, t: SimTime) -> bool {
        self.outages.iter().any(|w| w.contains(t))
    }

    /// Whether the budget update addressed to `entity` at `t` is dropped.
    pub fn drops_budget_update(&self, t: SimTime, entity: u64) -> bool {
        self.config.budget_drop_prob > 0.0
            && self.unit(SALT_BUDGET_DROP, t, entity) < self.config.budget_drop_prob
    }

    /// Delivery delay of the budget update addressed to `entity` at `t`
    /// (zero when the message is on time).
    pub fn budget_update_delay(&self, t: SimTime, entity: u64) -> SimDuration {
        if self.config.budget_delay_prob > 0.0
            && !self.config.budget_delay.is_zero()
            && self.unit(SALT_BUDGET_DELAY, t, entity) < self.config.budget_delay_prob
        {
            self.config.budget_delay
        } else {
            SimDuration::ZERO
        }
    }

    /// Whether `entity`'s WI telemetry window at `t` is lost (the sOA sees
    /// no demand and issues no overclock request).
    pub fn telemetry_gap(&self, t: SimTime, entity: u64) -> bool {
        self.config.telemetry_gap_prob > 0.0
            && self.unit(SALT_TELEMETRY_GAP, t, entity) < self.config.telemetry_gap_prob
    }

    /// Multiplicative noise factor applied to `entity`'s power prediction at
    /// `t`. Exactly `1.0` when no noise is configured (so fault-free
    /// arithmetic is bit-identical to not calling this at all). The static
    /// `prediction_bias` is *not* included: apply it once at template-build
    /// time (e.g. via `PowerTemplate::map_values`).
    pub fn prediction_factor(&self, t: SimTime, entity: u64) -> f64 {
        if self.config.prediction_noise <= 0.0 {
            return 1.0;
        }
        let u = self.unit(SALT_PREDICTION_NOISE, t, entity);
        (1.0 + self.config.prediction_noise * (2.0 * u - 1.0)).max(0.0)
    }

    /// Whether `entity`'s sOA restarts at `t` (volatile state loss).
    pub fn soa_restarts(&self, t: SimTime, entity: u64) -> bool {
        self.config.soa_restart_prob > 0.0
            && self.unit(SALT_SOA_RESTART, t, entity) < self.config.soa_restart_prob
    }

    /// Stateless uniform draw in `[0, 1)` from `(seed, salt, t, entity)`.
    fn unit(&self, salt: u64, t: SimTime, entity: u64) -> f64 {
        let mut h = mix64(self.config.seed ^ mix64(salt));
        h = mix64(h ^ t.as_micros());
        h = mix64(h ^ entity);
        // 53 high bits → [0, 1) with full double precision.
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 finalizer: a well-mixed bijection on `u64`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::ZERO + SimDuration::WEEK)
    }

    fn faulty_config(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig {
            seed,
            goa_outages: 3,
            goa_outage_len: SimDuration::from_hours(4),
            budget_drop_prob: 0.05,
            budget_delay_prob: 0.05,
            budget_delay: SimDuration::from_minutes(30),
            telemetry_gap_prob: 0.02,
            prediction_bias: 1.05,
            prediction_noise: 0.1,
            soa_restart_prob: 0.001,
        }
    }

    #[test]
    fn default_plan_is_noop_everywhere() {
        let (s, e) = horizon();
        let plan = FaultPlan::generate(&FaultPlanConfig::default(), s, e);
        assert!(plan.is_noop());
        assert!(plan.outages().is_empty());
        let mut t = s;
        let step = SimDuration::from_hours(1);
        while t < e {
            for entity in 0..4 {
                assert!(!plan.goa_unreachable(t));
                assert!(!plan.drops_budget_update(t, entity));
                assert!(plan.budget_update_delay(t, entity).is_zero());
                assert!(!plan.telemetry_gap(t, entity));
                assert_eq!(plan.prediction_factor(t, entity), 1.0);
                assert!(!plan.soa_restarts(t, entity));
            }
            t += step;
        }
    }

    #[test]
    fn same_seed_plans_are_identical() {
        let (s, e) = horizon();
        let a = FaultPlan::generate(&faulty_config(7), s, e);
        let b = FaultPlan::generate(&faulty_config(7), s, e);
        assert_eq!(a, b);
        // Point faults agree at every probe.
        let t = s + SimDuration::from_hours(13);
        for entity in 0..64 {
            assert_eq!(
                a.drops_budget_update(t, entity),
                b.drops_budget_update(t, entity)
            );
            assert_eq!(
                a.prediction_factor(t, entity),
                b.prediction_factor(t, entity)
            );
        }
    }

    #[test]
    fn different_seeds_change_the_schedule() {
        let (s, e) = horizon();
        let a = FaultPlan::generate(&faulty_config(7), s, e);
        let b = FaultPlan::generate(&faulty_config(8), s, e);
        assert_ne!(a.outages(), b.outages());
    }

    #[test]
    fn outage_windows_stay_inside_the_horizon_and_are_sorted() {
        let (s, e) = horizon();
        let plan = FaultPlan::generate(&faulty_config(42), s, e);
        assert_eq!(plan.outages().len(), 3);
        for w in plan.outages() {
            assert!(w.start >= s);
            assert!(w.end <= e);
            assert_eq!(w.len(), SimDuration::from_hours(4));
            assert!(!w.is_empty());
            // The window answers its own containment probes.
            assert!(plan.goa_unreachable(w.start));
            assert!(!plan.goa_unreachable(w.end));
        }
        for pair in plan.outages().windows(2) {
            assert!(pair[0].start <= pair[1].start, "windows must be sorted");
        }
    }

    #[test]
    fn outages_longer_than_horizon_are_not_placed() {
        let mut cfg = faulty_config(1);
        cfg.goa_outage_len = SimDuration::WEEK * 2;
        let (s, e) = horizon();
        let plan = FaultPlan::generate(&cfg, s, e);
        assert!(plan.outages().is_empty());
    }

    #[test]
    fn point_faults_are_query_order_independent() {
        let (s, e) = horizon();
        let plan = FaultPlan::generate(&faulty_config(3), s, e);
        let t = s + SimDuration::from_hours(50);
        // Probe forwards and backwards; a stateful implementation would
        // give different answers.
        let forwards: Vec<bool> = (0..100).map(|i| plan.telemetry_gap(t, i)).collect();
        let backwards: Vec<bool> = (0..100)
            .rev()
            .map(|i| plan.telemetry_gap(t, i))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        assert_eq!(forwards, backwards);
        assert!(
            forwards.iter().any(|&g| g),
            "2% gap probability over 100 probes should hit at least once"
        );
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let (s, e) = horizon();
        let mut cfg = FaultPlanConfig::none();
        cfg.budget_drop_prob = 0.25;
        let plan = FaultPlan::generate(&cfg, s, e);
        let mut hits = 0u64;
        let n = 10_000u64;
        for i in 0..n {
            let t = s + SimDuration::from_secs(i);
            if plan.drops_budget_update(t, 1) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn prediction_factor_stays_in_band() {
        let (s, e) = horizon();
        let plan = FaultPlan::generate(&faulty_config(9), s, e);
        for i in 0..1000u64 {
            let f = plan.prediction_factor(s + SimDuration::from_secs(i), 2);
            assert!((0.9..=1.1).contains(&f), "noise amplitude 0.1: got {f}");
        }
    }

    #[test]
    fn entity_ids_are_disjoint_across_racks_and_servers() {
        let mut seen = Vec::new();
        for rack in 0..8 {
            for server in 0..32 {
                seen.push(FaultPlan::entity_id(rack, server));
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8 * 32);
    }

    #[test]
    #[should_panic(expected = "budget_drop_prob must be in [0, 1]")]
    fn validate_rejects_bad_probability() {
        let mut cfg = FaultPlanConfig::none();
        cfg.budget_drop_prob = 1.5;
        let (s, e) = horizon();
        let _ = FaultPlan::generate(&cfg, s, e);
    }

    #[test]
    fn fault_kind_labels_are_stable() {
        assert_eq!(FaultKind::GoaOutage.label(), "goa_outage");
        assert_eq!(FaultKind::SoaRestart.label(), "soa_restart");
        assert_eq!(FaultKind::PredictionError.label(), "prediction_error");
    }
}

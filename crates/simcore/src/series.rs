//! Regularly-sampled time series.
//!
//! Production traces in the paper are collected at a 5-minute granularity
//! (§V-B). [`TimeSeries`] models exactly that: a start time, a fixed step,
//! and one `f64` sample per step. The time-of-day/weekday grouping methods
//! implement the aggregation the power templates are built from.

use crate::stats::{mean, percentile};
use crate::time::{SimDuration, SimTime, Weekday};
use serde::{Deserialize, Serialize};

/// A regularly-sampled series of `f64` values.
///
/// ```
/// use simcore::series::TimeSeries;
/// use simcore::time::{SimDuration, SimTime};
///
/// let ts = TimeSeries::from_values(
///     SimTime::ZERO,
///     SimDuration::from_minutes(5),
///     vec![1.0, 2.0, 3.0],
/// );
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.value_at(SimTime::ZERO + SimDuration::from_minutes(7)), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: SimTime,
    step: SimDuration,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create an empty series.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    pub fn new(start: SimTime, step: SimDuration) -> TimeSeries {
        assert!(!step.is_zero(), "step must be non-zero");
        TimeSeries {
            start,
            step,
            values: Vec::new(),
        }
    }

    /// Create a series from existing values.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    pub fn from_values(start: SimTime, step: SimDuration, values: Vec<f64>) -> TimeSeries {
        assert!(!step.is_zero(), "step must be non-zero");
        TimeSeries {
            start,
            step,
            values,
        }
    }

    /// Generate a series by sampling `f` at each tick in `[start, end)`.
    ///
    /// # Panics
    /// Panics if `step` is zero or `end < start`.
    pub fn generate<F: FnMut(SimTime) -> f64>(
        start: SimTime,
        end: SimTime,
        step: SimDuration,
        mut f: F,
    ) -> TimeSeries {
        let values = crate::time::ticks(start, end, step).map(&mut f).collect();
        TimeSeries {
            start,
            step,
            values,
        }
    }

    /// First sample's timestamp.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Sampling interval.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// One-past-the-last timestamp covered by the series.
    pub fn end(&self) -> SimTime {
        self.start + self.step * self.values.len() as u64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append one sample at the next tick.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The raw sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Timestamp of sample `i`.
    pub fn time_at_index(&self, i: usize) -> SimTime {
        self.start + self.step * i as u64
    }

    /// Slot index of the sample covering instant `t`, or `None` if `t` is
    /// before the series start. The index may be past the end of the data;
    /// `value_at(t) == self.values().get(self.index_at(t)?)`. Batched
    /// consumers (the columnar rack engine) compute the index once per step
    /// and probe many same-shaped series with it.
    pub fn index_at(&self, t: SimTime) -> Option<usize> {
        if t < self.start {
            return None;
        }
        Some((t.since(self.start).as_micros() / self.step.as_micros()) as usize)
    }

    /// Sample covering instant `t`, if within range.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        self.values.get(self.index_at(t)?).copied()
    }

    /// Iterate over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.time_at_index(i), v))
    }

    /// Element-wise sum of multiple series with identical start/step/len.
    ///
    /// Used to aggregate per-server power into rack power.
    ///
    /// # Panics
    /// Panics if `series` is empty or shapes differ.
    pub fn sum_of(series: &[&TimeSeries]) -> TimeSeries {
        let first = *series.first().expect("need at least one series");
        for s in series {
            assert_eq!(s.start, first.start, "mismatched start");
            assert_eq!(s.step, first.step, "mismatched step");
            assert_eq!(s.len(), first.len(), "mismatched length");
        }
        let values = (0..first.len())
            .map(|i| series.iter().map(|s| s.values[i]).sum())
            .collect();
        TimeSeries {
            start: first.start,
            step: first.step,
            values,
        }
    }

    /// Apply a function to every value, producing a new series.
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> TimeSeries {
        TimeSeries {
            start: self.start,
            step: self.step,
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Sub-series covering `[from, to)` (clamped to the available range).
    pub fn slice(&self, from: SimTime, to: SimTime) -> TimeSeries {
        let lo = if from <= self.start {
            0
        } else {
            from.since(self.start)
                .as_micros()
                .div_ceil(self.step.as_micros()) as usize
        };
        let hi = if to <= self.start {
            0
        } else {
            to.since(self.start)
                .as_micros()
                .div_ceil(self.step.as_micros()) as usize
        };
        let lo = lo.min(self.values.len());
        let hi = hi.min(self.values.len()).max(lo);
        TimeSeries {
            start: self.time_at_index(lo),
            step: self.step,
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Group samples by slot-within-day, returning `slots_per_day` buckets.
    ///
    /// Bucket `i` contains every sample whose time-of-day falls in slot `i`.
    /// This is the aggregation behind the paper's *DailyMed*/*DailyMax*
    /// templates ("the template's value at 9AM is the median of rack's power
    /// consumption at 9AM across all five weekdays", §IV-B).
    ///
    /// `day_filter` selects which weekdays participate (e.g. weekdays only).
    pub fn group_by_time_of_day<F: Fn(Weekday) -> bool>(&self, day_filter: F) -> Vec<Vec<f64>> {
        let slots_per_day = (SimDuration::DAY.as_micros() / self.step.as_micros()) as usize;
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); slots_per_day];
        for (t, v) in self.iter() {
            if day_filter(t.weekday()) {
                let slot = (t.time_of_day().as_micros() / self.step.as_micros()) as usize;
                buckets[slot % slots_per_day].push(v);
            }
        }
        buckets
    }

    /// Per-day-slot aggregate (e.g. median) over selected weekdays; slots with
    /// no samples yield `f64::NAN`.
    pub fn daily_profile<F: Fn(Weekday) -> bool, A: Fn(&[f64]) -> f64>(
        &self,
        day_filter: F,
        aggregate: A,
    ) -> Vec<f64> {
        self.group_by_time_of_day(day_filter)
            .iter()
            .map(|b| if b.is_empty() { f64::NAN } else { aggregate(b) })
            .collect()
    }

    /// Mean of all samples.
    ///
    /// # Panics
    /// Panics if the series is empty.
    pub fn mean(&self) -> f64 {
        mean(&self.values)
    }

    /// Percentile of all samples.
    ///
    /// # Panics
    /// Panics if the series is empty or `p` outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.values, p)
    }

    /// Maximum sample.
    ///
    /// # Panics
    /// Panics if the series is empty.
    pub fn max(&self) -> f64 {
        assert!(!self.values.is_empty(), "max of an empty series");
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sample.
    ///
    /// # Panics
    /// Panics if the series is empty.
    pub fn min(&self) -> f64 {
        assert!(!self.values.is_empty(), "min of an empty series");
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn five_min_series(days: u64, f: impl FnMut(SimTime) -> f64) -> TimeSeries {
        TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_days(days),
            SimDuration::from_minutes(5),
            f,
        )
    }

    #[test]
    fn generate_has_expected_length() {
        let ts = five_min_series(1, |_| 1.0);
        assert_eq!(ts.len(), 288); // 24h * 12 samples/h
        assert_eq!(ts.end(), SimTime::ZERO + SimDuration::from_days(1));
    }

    #[test]
    fn value_at_picks_covering_sample() {
        let ts = TimeSeries::from_values(
            SimTime::from_secs(100),
            SimDuration::from_secs(10),
            vec![1.0, 2.0, 3.0],
        );
        assert_eq!(ts.value_at(SimTime::from_secs(99)), None);
        assert_eq!(ts.value_at(SimTime::from_secs(100)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_secs(119)), Some(2.0));
        assert_eq!(ts.value_at(SimTime::from_secs(130)), None);
    }

    #[test]
    fn sum_of_aggregates_elementwise() {
        let a = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![1.0, 2.0]);
        let b = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![10.0, 20.0]);
        let s = TimeSeries::sum_of(&[&a, &b]);
        assert_eq!(s.values(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "mismatched length")]
    fn sum_of_rejects_shape_mismatch() {
        let a = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![1.0]);
        let b = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![1.0, 2.0]);
        let _ = TimeSeries::sum_of(&[&a, &b]);
    }

    #[test]
    fn group_by_time_of_day_buckets_by_slot() {
        // Two days of hourly samples; value = hour-of-day + 100*day.
        let ts = TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_days(2),
            SimDuration::HOUR,
            |t| t.time_of_day().as_hours_f64() + 100.0 * t.day_index() as f64,
        );
        let buckets = ts.group_by_time_of_day(|_| true);
        assert_eq!(buckets.len(), 24);
        assert_eq!(buckets[3], vec![3.0, 103.0]); // 3AM Mon, 3AM Tue
    }

    #[test]
    fn daily_profile_respects_day_filter() {
        // One full week of daily-constant values: value = day index.
        let ts = TimeSeries::generate(
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_days(7),
            SimDuration::HOUR,
            |t| t.day_index() as f64,
        );
        let weekday_profile = ts.daily_profile(|d| !d.is_weekend(), mean);
        // Weekdays are day indices 0..5 → mean 2.0 in every slot.
        assert!(weekday_profile.iter().all(|&v| (v - 2.0).abs() < 1e-12));
        let weekend_profile = ts.daily_profile(|d| d.is_weekend(), mean);
        assert!(weekend_profile.iter().all(|&v| (v - 5.5).abs() < 1e-12));
    }

    #[test]
    fn slice_clamps_and_aligns() {
        let ts = TimeSeries::from_values(
            SimTime::ZERO,
            SimDuration::from_secs(10),
            (0..10).map(|i| i as f64).collect(),
        );
        let s = ts.slice(SimTime::from_secs(25), SimTime::from_secs(55));
        assert_eq!(s.start(), SimTime::from_secs(30));
        assert_eq!(s.values(), &[3.0, 4.0, 5.0]);
        // Fully out-of-range slice is empty.
        assert!(ts
            .slice(SimTime::from_secs(500), SimTime::from_secs(600))
            .is_empty());
    }

    #[test]
    fn basic_stats() {
        let ts = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![1.0, 3.0, 2.0]);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.max(), 3.0);
        assert_eq!(ts.min(), 1.0);
        assert_eq!(ts.percentile(50.0), 2.0);
    }

    #[test]
    fn map_preserves_shape() {
        let ts = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![1.0, 2.0]);
        let doubled = ts.map(|v| v * 2.0);
        assert_eq!(doubled.values(), &[2.0, 4.0]);
        assert_eq!(doubled.start(), ts.start());
        assert_eq!(doubled.step(), ts.step());
    }
}

//! Simulated time.
//!
//! Time is measured in integer **microseconds** since the simulation epoch.
//! The epoch is defined to fall on a Monday at 00:00, which makes the calendar
//! helpers ([`SimTime::weekday`], [`SimTime::time_of_day`]) trivial and
//! deterministic — exactly what the power-template logic in `soc-predict`
//! needs (per-weekday aggregation, weekend/weekday split).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time (microseconds since a Monday-00:00 epoch).
///
/// ```
/// use simcore::time::{SimTime, SimDuration, Weekday};
///
/// let t = SimTime::ZERO + SimDuration::from_hours(26);
/// assert_eq!(t.weekday(), Weekday::Tuesday);
/// assert_eq!(t.time_of_day().as_hours_f64(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

/// Day of the simulated week. The simulation epoch is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All seven days, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Index in `0..7`, Monday = 0.
    pub fn index(self) -> usize {
        match self {
            Weekday::Monday => 0,
            Weekday::Tuesday => 1,
            Weekday::Wednesday => 2,
            Weekday::Thursday => 3,
            Weekday::Friday => 4,
            Weekday::Saturday => 5,
            Weekday::Sunday => 6,
        }
    }

    /// Build from an index in `0..7` (Monday = 0).
    ///
    /// # Panics
    /// Panics if `idx >= 7`.
    pub fn from_index(idx: usize) -> Weekday {
        Weekday::ALL[idx]
    }

    /// Whether this day belongs to the weekend (Saturday/Sunday).
    ///
    /// SmartOClock keeps separate power templates for weekdays and weekends
    /// (paper §IV-B).
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        };
        f.write_str(s)
    }
}

impl SimTime {
    /// The simulation epoch (Monday 00:00).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds since the epoch.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours since the epoch, as `f64`.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be after `self`"),
        )
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The day of the simulated week this instant falls on.
    pub fn weekday(self) -> Weekday {
        let day = (self.0 / SimDuration::DAY.0) % 7;
        Weekday::from_index(day as usize)
    }

    /// Offset from the most recent midnight.
    pub fn time_of_day(self) -> SimDuration {
        SimDuration(self.0 % SimDuration::DAY.0)
    }

    /// Offset from the start of the current simulated week (Monday 00:00).
    pub fn time_of_week(self) -> SimDuration {
        SimDuration(self.0 % SimDuration::WEEK.0)
    }

    /// Index of the simulated day since the epoch (day 0 is the first Monday).
    pub fn day_index(self) -> u64 {
        self.0 / SimDuration::DAY.0
    }

    /// Index of the simulated week since the epoch.
    pub fn week_index(self) -> u64 {
        self.0 / SimDuration::WEEK.0
    }

    /// Round down to a multiple of `step` since the epoch.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    pub fn align_down(self, step: SimDuration) -> SimTime {
        assert!(step.0 > 0, "step must be non-zero");
        SimTime(self.0 - self.0 % step.0)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One millisecond.
    pub const MILLISECOND: SimDuration = SimDuration(1_000);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(MICROS_PER_SEC);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60 * MICROS_PER_SEC);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(3_600 * MICROS_PER_SEC);
    /// One day.
    pub const DAY: SimDuration = SimDuration(86_400 * MICROS_PER_SEC);
    /// One (7-day) week.
    pub const WEEK: SimDuration = SimDuration(7 * 86_400 * MICROS_PER_SEC);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole minutes.
    pub const fn from_minutes(m: u64) -> SimDuration {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> SimDuration {
        SimDuration(h * 3_600 * MICROS_PER_SEC)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> SimDuration {
        SimDuration(d * 86_400 * MICROS_PER_SEC)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.as_secs_f64() / 86_400.0
    }

    /// `true` when the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    ///
    /// # Panics
    /// Panics if `k` is negative or not finite.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(
            k.is_finite() && k >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Ratio of two durations.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(other.0 > 0, "cannot take ratio against a zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tod = self.time_of_day();
        let h = tod.0 / SimDuration::HOUR.0;
        let m = (tod.0 % SimDuration::HOUR.0) / SimDuration::MINUTE.0;
        let s = (tod.0 % SimDuration::MINUTE.0) / SimDuration::SECOND.0;
        write!(
            f,
            "d{} {} {:02}:{:02}:{:02}",
            self.day_index(),
            self.weekday(),
            h,
            m,
            s
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SimDuration::HOUR.0 {
            write!(f, "{:.2}h", self.as_hours_f64())
        } else if self.0 >= SimDuration::SECOND.0 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// Iterator over aligned instants `[start, end)` spaced by `step`.
///
/// ```
/// use simcore::time::{ticks, SimTime, SimDuration};
/// let v: Vec<_> = ticks(SimTime::ZERO, SimTime::from_secs(10), SimDuration::from_secs(5)).collect();
/// assert_eq!(v.len(), 2);
/// ```
pub fn ticks(start: SimTime, end: SimTime, step: SimDuration) -> Ticks {
    assert!(!step.is_zero(), "step must be non-zero");
    Ticks {
        next: start,
        end,
        step,
    }
}

/// Iterator returned by [`ticks`].
#[derive(Debug, Clone)]
pub struct Ticks {
    next: SimTime,
    end: SimTime,
    step: SimDuration,
}

impl Iterator for Ticks {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.next >= self.end {
            return None;
        }
        let t = self.next;
        self.next += self.step;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday_midnight() {
        assert_eq!(SimTime::ZERO.weekday(), Weekday::Monday);
        assert_eq!(SimTime::ZERO.time_of_day(), SimDuration::ZERO);
    }

    #[test]
    fn weekday_cycles_over_a_week() {
        for (i, wd) in Weekday::ALL.iter().enumerate() {
            let t = SimTime::ZERO + SimDuration::from_days(i as u64) + SimDuration::from_hours(5);
            assert_eq!(t.weekday(), *wd);
        }
        let next_monday = SimTime::ZERO + SimDuration::from_days(7);
        assert_eq!(next_monday.weekday(), Weekday::Monday);
    }

    #[test]
    fn weekend_detection() {
        assert!(!Weekday::Friday.is_weekend());
        assert!(Weekday::Saturday.is_weekend());
        assert!(Weekday::Sunday.is_weekend());
    }

    #[test]
    fn time_of_day_and_week() {
        let t = SimTime::ZERO + SimDuration::from_days(9) + SimDuration::from_hours(3);
        assert_eq!(t.time_of_day(), SimDuration::from_hours(3));
        assert_eq!(
            t.time_of_week(),
            SimDuration::from_days(2) + SimDuration::from_hours(3)
        );
        assert_eq!(t.day_index(), 9);
        assert_eq!(t.week_index(), 1);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_secs(100);
        let d = SimDuration::from_secs(42);
        assert_eq!((t0 + d).since(t0), d);
        assert_eq!((t0 + d) - d, t0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be after")]
    fn since_panics_on_negative() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn align_down_works() {
        let t = SimTime::from_secs(3721);
        assert_eq!(
            t.align_down(SimDuration::from_secs(60)),
            SimTime::from_secs(3720)
        );
        assert_eq!(t.align_down(SimDuration::HOUR), SimTime::from_secs(3600));
    }

    #[test]
    fn ticks_iterates_half_open() {
        let v: Vec<_> = ticks(
            SimTime::ZERO,
            SimTime::from_secs(15),
            SimDuration::from_secs(5),
        )
        .collect();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_secs(5), SimTime::from_secs(10)]
        );
    }

    #[test]
    fn duration_helpers() {
        assert_eq!(SimDuration::from_hours(2).as_hours_f64(), 2.0);
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(1.5),
            SimDuration::from_secs(15)
        );
        assert_eq!(
            SimDuration::from_secs(3).ratio(SimDuration::from_secs(6)),
            0.5
        );
        assert_eq!(
            SimDuration::from_secs(10).saturating_sub(SimDuration::from_secs(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        let t = SimTime::ZERO + SimDuration::from_days(1) + SimDuration::from_hours(9);
        assert_eq!(format!("{t}"), "d1 Tue 09:00:00");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90.00s");
        assert_eq!(format!("{}", SimDuration::from_hours(3)), "3.00h");
    }
}

//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs that pops
//! events in time order and breaks ties by insertion order, making every
//! simulation run fully deterministic regardless of payload type.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: time, tie-breaking sequence number, payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timed events.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO), which keeps multi-agent simulations reproducible.
///
/// ```
/// use simcore::event::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 5);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<u8> = vec![(SimTime::from_secs(1), 1u8), (SimTime::from_secs(0), 0u8)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        #[test]
        fn pop_order_is_nondecreasing(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn all_events_come_back(times in prop::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::ZERO + SimDuration::from_micros(t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}

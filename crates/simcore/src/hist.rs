//! Fixed-bucket histograms for high-volume latency recording.
//!
//! The queueing simulator produces millions of latency samples at cluster
//! scale; storing each sample for exact percentiles costs memory linear in
//! the run length. [`Histogram`] trades a bounded relative error for O(1)
//! recording and O(buckets) quantiles, using logarithmically spaced buckets
//! (as production latency recorders do).

use serde::{Deserialize, Serialize};

/// A log-bucketed histogram over positive values.
///
/// Values are assigned to buckets whose boundaries grow geometrically by
/// `1 + precision`; quantile estimates therefore carry at most `precision`
/// relative error.
///
/// ```
/// use simcore::hist::Histogram;
///
/// let mut h = Histogram::new(0.01);
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// let p50 = h.quantile(0.50);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.02);
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    precision: f64,
    log_gamma: f64,
    /// Bucket index → count. Index 0 holds values in `(0, 1]`; negative
    /// indices (values < 1) are offset by `OFFSET`.
    counts: std::collections::BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    zeros: u64,
}

impl Histogram {
    /// Create a histogram with the given relative `precision` (e.g. 0.01 for
    /// ~1 % quantile error).
    ///
    /// # Panics
    /// Panics unless `precision` is in `(0, 1)`.
    pub fn new(precision: f64) -> Histogram {
        assert!(
            precision > 0.0 && precision < 1.0,
            "precision must be in (0, 1)"
        );
        Histogram {
            precision,
            log_gamma: (1.0 + precision).ln(),
            counts: std::collections::BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zeros: 0,
        }
    }

    /// Record one non-negative value.
    ///
    /// # Panics
    /// Panics if `value` is negative or not finite.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "values must be finite and non-negative"
        );
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value == 0.0 {
            self.zeros += 1;
            return;
        }
        let idx = (value.ln() / self.log_gamma).ceil() as i32;
        *self.counts.entry(idx).or_insert(0) += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values.
    ///
    /// # Panics
    /// Panics if the histogram is empty.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of an empty histogram");
        self.sum / self.count as f64
    }

    /// Minimum recorded value.
    ///
    /// # Panics
    /// Panics if the histogram is empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of an empty histogram");
        self.min
    }

    /// Maximum recorded value.
    ///
    /// # Panics
    /// Panics if the histogram is empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of an empty histogram");
        self.max
    }

    /// Estimated quantile `q` in `[0, 1]`, within the configured relative
    /// precision.
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of an empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        if rank <= self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&idx, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                // Bucket upper bound; midpoint of the bucket in log space.
                let upper = (idx as f64 * self.log_gamma).exp();
                let lower = ((idx - 1) as f64 * self.log_gamma).exp();
                return ((upper + lower) / 2.0).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram (must share the same precision).
    ///
    /// # Panics
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            (self.precision - other.precision).abs() < 1e-12,
            "cannot merge histograms with different precisions"
        );
        for (&idx, &n) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;
    use proptest::prelude::*;

    #[test]
    fn quantiles_within_precision_on_uniform_data() {
        let mut h = Histogram::new(0.01);
        for i in 1..=10_000 {
            h.record(i as f64 / 10.0);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = q * 1000.0;
            let est = h.quantile(q);
            assert!(
                (est - exact).abs() / exact < 0.02,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn handles_zeros() {
        let mut h = Histogram::new(0.05);
        for _ in 0..50 {
            h.record(0.0);
        }
        for _ in 0..50 {
            h.record(10.0);
        }
        assert_eq!(h.quantile(0.25), 0.0);
        assert!(h.quantile(0.95) > 9.0);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn mean_and_extremes_are_exact() {
        let mut h = Histogram::new(0.01);
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new(0.01);
        let mut b = Histogram::new(0.01);
        let mut c = Histogram::new(0.01);
        let mut rng = Pcg32::seed_from_u64(5);
        for _ in 0..5000 {
            let v = rng.sample_lognormal(1.0, 0.8);
            a.record(v);
            c.record(v);
        }
        for _ in 0..5000 {
            let v = rng.sample_exp(0.3);
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for q in [0.5, 0.9, 0.99] {
            assert!((a.quantile(q) - c.quantile(q)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "different precisions")]
    fn merge_rejects_mismatched_precision() {
        let mut a = Histogram::new(0.01);
        a.record(1.0);
        let b = Histogram::new(0.02);
        a.merge(&b);
    }

    proptest! {
        #[test]
        fn quantile_bounded_by_extremes(values in prop::collection::vec(0.001..1e6f64, 1..500), q in 0.0..1.0f64) {
            let mut h = Histogram::new(0.01);
            for &v in &values {
                h.record(v);
            }
            let est = h.quantile(q);
            prop_assert!(est >= h.min() - 1e-12);
            prop_assert!(est <= h.max() + 1e-12);
        }

        #[test]
        fn quantile_monotone(values in prop::collection::vec(0.001..1e4f64, 2..300)) {
            let mut h = Histogram::new(0.01);
            for &v in &values {
                h.record(v);
            }
            prop_assert!(h.quantile(0.25) <= h.quantile(0.75) + 1e-12);
            prop_assert!(h.quantile(0.75) <= h.quantile(0.99) + 1e-12);
        }
    }
}

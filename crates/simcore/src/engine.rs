//! Minimal discrete-event execution loop.
//!
//! [`Engine`] owns the clock and the event queue and repeatedly hands the
//! earliest event to a [`Process`] implementation, which may schedule further
//! events. The engine is deliberately small: the heavy lifting (state,
//! routing) lives in the simulations built on top of it (`soc-workloads`,
//! `soc-cluster`).

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A simulation driven by an [`Engine`].
///
/// `handle` receives each event at its scheduled time and uses
/// [`Scheduler`] to enqueue follow-up events.
pub trait Process {
    /// The event payload type.
    type Event;

    /// Handle one event occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle used by [`Process::handle`] to schedule new events.
///
/// Borrowing the queue through this wrapper (rather than `&mut Engine`) keeps
/// the engine free to hold the in-flight event.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the past — events may not rewrite history.
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` after a delay from now.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }
}

/// Discrete-event engine: a clock plus an event queue.
///
/// ```
/// use simcore::engine::{Engine, Process, Scheduler};
/// use simcore::time::{SimDuration, SimTime};
///
/// struct Counter { ticks: u32 }
///
/// impl Process for Counter {
///     type Event = ();
///     fn handle(&mut self, _now: SimTime, _e: (), sched: &mut Scheduler<()>) {
///         self.ticks += 1;
///         if self.ticks < 5 {
///             sched.after(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, ());
/// let mut counter = Counter { ticks: 0 };
/// engine.run(&mut counter);
/// assert_eq!(counter.ticks, 5);
/// assert_eq!(engine.now(), SimTime::from_secs(4));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> Engine<E> {
    /// Create an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Engine<E> {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// The current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an initial event (before or between runs).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Run until the queue is drained.
    pub fn run<P: Process<Event = E>>(&mut self, process: &mut P) {
        self.run_until(process, SimTime::from_micros(u64::MAX));
    }

    /// Run until the queue is drained or the next event would be at or after
    /// `horizon`. Events at `horizon` are **not** processed; the clock stops
    /// at the last processed event.
    pub fn run_until<P: Process<Event = E>>(&mut self, process: &mut P, horizon: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let Some((t, event)) = self.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "event queue returned a past event");
            self.now = t;
            self.processed += 1;
            let mut sched = Scheduler {
                now: t,
                queue: &mut self.queue,
            };
            process.handle(t, event, &mut sched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl Process for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, e: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now, e));
            // Event 1 spawns a chain of follow-ups.
            if e == 1 && self.seen.len() < 4 {
                sched.after(SimDuration::from_secs(10), 1);
            }
        }
    }

    #[test]
    fn runs_chained_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 1);
        let mut rec = Recorder::default();
        engine.run(&mut rec);
        assert_eq!(rec.seen.len(), 4);
        assert_eq!(rec.seen[3].0, SimTime::from_secs(30));
        assert_eq!(engine.processed(), 4);
    }

    #[test]
    fn horizon_stops_processing() {
        let mut engine = Engine::new();
        for i in 0..10u32 {
            // Payloads start at 100 so the Recorder's chaining rule (event 1)
            // never fires in this test.
            engine.schedule(SimTime::from_secs(i as u64), i + 100);
        }
        let mut rec = Recorder::default();
        engine.run_until(&mut rec, SimTime::from_secs(5));
        assert_eq!(rec.seen.len(), 5); // events at t=0..4 only
        assert_eq!(engine.pending(), 5);
        // Resume to the end.
        engine.run(&mut rec);
        assert_eq!(rec.seen.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Process for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _e: (), sched: &mut Scheduler<()>) {
                sched.at(now - SimDuration::from_secs(1), ());
            }
        }
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(5), ());
        engine.run(&mut Bad);
    }
}

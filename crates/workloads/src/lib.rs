//! # soc-workloads — cloud workload models
//!
//! The paper evaluates SmartOClock on latency-critical microservices
//! (DeathStarBench SocialNet), throughput-oriented ML training
//! (FunctionBench MLTrain), and a proprietary web-conferencing application
//! (WebConf). This crate provides executable stand-ins for all three:
//!
//! * [`microservice`] — an open-loop discrete-event queueing simulator:
//!   Poisson arrivals, per-service heavy-tailed service times, multi-core
//!   VMs, least-loaded routing, online frequency changes and VM add/remove.
//!   Latency percentiles, SLO misses (SLO = 5× unloaded execution time, as
//!   in §III and §V-A), and CPU utilization come out per observation window,
//!   so control systems (autoscalers, SmartOClock) can close the loop.
//! * [`socialnet`] — the eight SocialNet-like service specifications used in
//!   Figs. 2, 3, and 12, with heterogeneous tail sensitivity (some services
//!   violate their SLO at low CPU utilization, others tolerate high
//!   utilization — the paper's Q1 observation).
//! * [`mltrain`] — frequency-proportional batch training with constant high
//!   power draw; throughput is the metric (§V-A "power-constrained").
//! * [`webconf`] — deployment-level utilization model for the WebConf
//!   scenario of Fig. 4.
//! * [`loadgen`] — piecewise-constant arrival-rate schedules, including
//!   diurnal and spike patterns derived from `soc-traces` shapes.

#![forbid(unsafe_code)]

pub mod loadgen;
pub mod microservice;
pub mod mltrain;
pub mod socialnet;
pub mod webconf;

pub use loadgen::RateSchedule;
pub use microservice::{MicroserviceSim, ServiceSpec, WindowStats};
pub use mltrain::MlTrain;
pub use webconf::WebConfDeployment;

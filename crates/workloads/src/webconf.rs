//! Deployment-level utilization model for the WebConf scenario.
//!
//! WebConf provisions VMs across availability zones and keeps the *average
//! deployment-level* CPU utilization below a target (50 %) so it can absorb
//! a failed zone's load (§III-Q1, Fig. 4). The paper's point: a VM-local
//! overclocking policy would boost a hot VM even though the deployment as a
//! whole is already meeting its goal — workload intelligence must aggregate
//! at the deployment level.

use serde::{Deserialize, Serialize};
use soc_power::units::MegaHertz;

/// One WebConf VM: its offered load expressed as CPU utilization at turbo.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WebConfVm {
    /// Utilization the VM would show at max turbo, `[0, 1]`.
    pub load_at_turbo: f64,
    /// Current core frequency.
    pub frequency: MegaHertz,
}

/// A WebConf deployment with a deployment-level utilization goal.
///
/// ```
/// use soc_workloads::webconf::{WebConfDeployment, WebConfVm};
/// use soc_power::units::MegaHertz;
///
/// let turbo = MegaHertz::new(3300);
/// let mut dep = WebConfDeployment::new(turbo, 0.5);
/// dep.add_vm(0.10); // lightly loaded VM
/// dep.add_vm(0.80); // hot VM
/// // Deployment-level utilization is 45% — already meeting the 50% goal,
/// // so overclocking the hot VM is unnecessary (Fig. 4).
/// assert!(dep.meets_goal());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebConfDeployment {
    turbo: MegaHertz,
    goal: f64,
    vms: Vec<WebConfVm>,
}

impl WebConfDeployment {
    /// Create a deployment with a mean-utilization goal.
    ///
    /// # Panics
    /// Panics if `goal` is outside `(0, 1]` or the frequency is zero.
    pub fn new(turbo: MegaHertz, goal: f64) -> WebConfDeployment {
        assert!(turbo.get() > 0, "turbo frequency must be positive");
        assert!(goal > 0.0 && goal <= 1.0, "goal must be in (0, 1]");
        WebConfDeployment {
            turbo,
            goal,
            vms: Vec::new(),
        }
    }

    /// Add a VM with the given load, starting at turbo.
    ///
    /// # Panics
    /// Panics if `load_at_turbo` is outside `[0, 1]`.
    pub fn add_vm(&mut self, load_at_turbo: f64) -> usize {
        assert!(
            (0.0..=1.0).contains(&load_at_turbo),
            "load must be in [0, 1], got {load_at_turbo}"
        );
        self.vms.push(WebConfVm {
            load_at_turbo,
            frequency: self.turbo,
        });
        self.vms.len() - 1
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Set the frequency of VM `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_frequency(&mut self, i: usize, f: MegaHertz) {
        assert!(f.get() > 0, "frequency must be positive");
        self.vms[i].frequency = f;
    }

    /// Current utilization of VM `i`: the same work at higher frequency
    /// occupies proportionally fewer cycles (`u = load · f_turbo / f`,
    /// clamped at 1).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn vm_utilization(&self, i: usize) -> f64 {
        let vm = self.vms[i];
        (vm.load_at_turbo * self.turbo.ratio(vm.frequency)).min(1.0)
    }

    /// Deployment-level mean utilization.
    ///
    /// # Panics
    /// Panics if the deployment has no VMs.
    pub fn deployment_utilization(&self) -> f64 {
        assert!(!self.vms.is_empty(), "deployment has no VMs");
        (0..self.vms.len())
            .map(|i| self.vm_utilization(i))
            .sum::<f64>()
            / self.vms.len() as f64
    }

    /// Whether the deployment meets its utilization goal.
    pub fn meets_goal(&self) -> bool {
        self.deployment_utilization() <= self.goal
    }

    /// VM indices a *VM-local* policy (threshold on per-VM utilization)
    /// would overclock — used to demonstrate the Fig. 4 inefficiency.
    pub fn vms_above(&self, threshold: f64) -> Vec<usize> {
        (0..self.vms.len())
            .filter(|&i| self.vm_utilization(i) > threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment() -> WebConfDeployment {
        let mut dep = WebConfDeployment::new(MegaHertz::new(3300), 0.5);
        dep.add_vm(0.10);
        dep.add_vm(0.80);
        dep
    }

    #[test]
    fn paper_scenario_meets_goal_without_overclocking() {
        let dep = deployment();
        assert!((dep.deployment_utilization() - 0.45).abs() < 1e-12);
        assert!(dep.meets_goal());
        // A VM-local policy would still flag VM2.
        assert_eq!(dep.vms_above(0.7), vec![1]);
    }

    #[test]
    fn overclocking_lowers_vm_utilization() {
        let mut dep = deployment();
        dep.set_frequency(1, MegaHertz::new(4000));
        let u = dep.vm_utilization(1);
        assert!((u - 0.8 * 3300.0 / 4000.0).abs() < 1e-12);
        assert!(dep.deployment_utilization() < 0.45);
    }

    #[test]
    fn utilization_clamps_at_one() {
        let mut dep = WebConfDeployment::new(MegaHertz::new(3300), 0.5);
        dep.add_vm(1.0);
        dep.set_frequency(0, MegaHertz::new(2000)); // underclock
        assert_eq!(dep.vm_utilization(0), 1.0);
    }

    #[test]
    fn goal_violated_when_all_vms_hot() {
        let mut dep = WebConfDeployment::new(MegaHertz::new(3300), 0.5);
        dep.add_vm(0.7);
        dep.add_vm(0.8);
        assert!(!dep.meets_goal());
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn rejects_bad_load() {
        let mut dep = WebConfDeployment::new(MegaHertz::new(3300), 0.5);
        dep.add_vm(1.5);
    }
}

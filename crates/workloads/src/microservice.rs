//! Open-loop queueing simulator for latency-critical microservices.
//!
//! Each simulated service instance (VM) is a multi-core FIFO queue; requests
//! arrive from a Poisson process with a piecewise-constant rate schedule and
//! are routed to the least-loaded active VM. Service demand is heavy-tailed
//! (log-normal) and scales inversely with core frequency, so overclocking a
//! VM from 3.3 GHz to 4.0 GHz shortens every request by ~17.5 % — which is
//! what collapses the queueing tail at high load (the Fig. 2 effect).
//!
//! The simulator is built for *closed-loop control*: callers advance it in
//! windows, observe [`WindowStats`] (P99/mean latency, SLO misses, CPU
//! utilization), and may change VM frequencies or the active VM count before
//! the next window — exactly the observation/actuation interface autoscalers
//! and SmartOClock's agents use.

use crate::loadgen::RateSchedule;
use serde::{Deserialize, Serialize};
use simcore::event::EventQueue;
use simcore::rng::Pcg32;
use simcore::stats::percentile;
use simcore::time::{SimDuration, SimTime};
use soc_power::units::MegaHertz;
use std::collections::VecDeque;

/// Static description of one microservice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Service name (e.g. `"UrlShort"`).
    pub name: String,
    /// Mean service demand at max turbo, milliseconds.
    pub mean_service_ms: f64,
    /// Coefficient of variation of service demand (tail heaviness).
    pub cv: f64,
    /// Cores per VM instance.
    pub cores_per_vm: usize,
    /// SLO as a multiple of unloaded execution time (the paper uses 5×).
    pub slo_multiplier: f64,
}

impl ServiceSpec {
    /// Build a spec.
    ///
    /// # Panics
    /// Panics if any numeric parameter is non-positive.
    pub fn new(
        name: impl Into<String>,
        mean_service_ms: f64,
        cv: f64,
        cores_per_vm: usize,
    ) -> ServiceSpec {
        assert!(mean_service_ms > 0.0, "service time must be positive");
        assert!(cv > 0.0, "coefficient of variation must be positive");
        assert!(cores_per_vm > 0, "need at least one core per VM");
        ServiceSpec {
            name: name.into(),
            mean_service_ms,
            cv,
            cores_per_vm,
            slo_multiplier: 5.0,
        }
    }

    /// The service-level objective on end-to-end latency, in milliseconds:
    /// `slo_multiplier ×` the unloaded execution time (§III, §V-A).
    pub fn slo_ms(&self) -> f64 {
        self.slo_multiplier * self.mean_service_ms
    }

    /// Theoretical throughput capacity of one VM at the given frequency
    /// ratio (`f / f_turbo`), requests per second.
    pub fn capacity_per_vm(&self, freq_ratio: f64) -> f64 {
        self.cores_per_vm as f64 / (self.mean_service_ms / 1000.0) * freq_ratio
    }

    /// Log-normal parameters `(mu, sigma)` matching the mean and CV.
    fn lognormal_params(&self) -> (f64, f64) {
        let sigma2 = (1.0 + self.cv * self.cv).ln();
        let mu = (self.mean_service_ms / 1000.0).ln() - sigma2 / 2.0;
        (mu, sigma2.sqrt())
    }
}

/// Aggregated observations over one control window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window length.
    pub window: SimDuration,
    /// Completed requests in the window.
    pub completions: u64,
    /// Arrivals in the window.
    pub arrivals: u64,
    /// Mean latency of completions, ms (NaN when no completions).
    pub mean_ms: f64,
    /// P99 latency of completions, ms (NaN when no completions).
    pub p99_ms: f64,
    /// Fraction of completions above the SLO (0 when no completions).
    pub slo_miss_frac: f64,
    /// Mean CPU utilization of active VMs over the window, `[0, 1]`.
    pub cpu_utilization: f64,
    /// Active VM count at window end.
    pub active_vms: usize,
}

#[derive(Debug, Clone, Copy)]
struct Request {
    arrival: SimTime,
    /// Service demand in seconds at max turbo.
    work: f64,
}

#[derive(Debug, Clone)]
struct Vm {
    frequency: MegaHertz,
    busy: usize,
    queue: VecDeque<Request>,
    active: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival,
    Departure { vm: usize, request: Request },
}

/// The event-driven microservice simulator.
///
/// ```
/// use soc_workloads::microservice::{MicroserviceSim, ServiceSpec};
/// use soc_workloads::loadgen::RateSchedule;
/// use soc_power::units::MegaHertz;
/// use simcore::time::SimTime;
///
/// let spec = ServiceSpec::new("demo", 20.0, 1.0, 4);
/// let rate = RateSchedule::constant(0.5 * spec.capacity_per_vm(1.0));
/// let mut sim = MicroserviceSim::new(spec, MegaHertz::new(3300), rate, 1, 7);
/// let stats = sim.advance_window(SimTime::from_secs(30));
/// assert!(stats.completions > 0);
/// assert!(stats.p99_ms >= stats.mean_ms);
/// ```
#[derive(Debug, Clone)]
pub struct MicroserviceSim {
    spec: ServiceSpec,
    turbo: MegaHertz,
    schedule: RateSchedule,
    rng: Pcg32,
    queue: EventQueue<Event>,
    vms: Vec<Vm>,
    now: SimTime,
    last_integration: SimTime,
    // Window accumulators.
    window_start: SimTime,
    latencies_ms: Vec<f64>,
    window_arrivals: u64,
    busy_core_seconds: f64,
    // Lifetime counters.
    total_arrivals: u64,
    total_completions: u64,
    lognormal_mu: f64,
    lognormal_sigma: f64,
}

impl MicroserviceSim {
    /// Create a simulator with `initial_vms` active VMs at max turbo.
    ///
    /// # Panics
    /// Panics if `initial_vms == 0`.
    pub fn new(
        spec: ServiceSpec,
        turbo: MegaHertz,
        schedule: RateSchedule,
        initial_vms: usize,
        seed: u64,
    ) -> MicroserviceSim {
        assert!(initial_vms > 0, "need at least one VM");
        let (mu, sigma) = spec.lognormal_params();
        let vms = (0..initial_vms)
            .map(|_| Vm {
                frequency: turbo,
                busy: 0,
                queue: VecDeque::new(),
                active: true,
            })
            .collect();
        let mut sim = MicroserviceSim {
            spec,
            turbo,
            schedule,
            rng: Pcg32::seed_from_u64(seed),
            queue: EventQueue::new(),
            vms,
            now: SimTime::ZERO,
            last_integration: SimTime::ZERO,
            window_start: SimTime::ZERO,
            latencies_ms: Vec::new(),
            window_arrivals: 0,
            busy_core_seconds: 0.0,
            total_arrivals: 0,
            total_completions: 0,
            lognormal_mu: mu,
            lognormal_sigma: sigma,
        };
        if let Some(t) = sim.next_arrival_time(SimTime::ZERO) {
            sim.queue.push(t, Event::Arrival);
        }
        sim
    }

    /// The service specification.
    pub fn spec(&self) -> &ServiceSpec {
        &self.spec
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of *active* VMs (routing targets).
    pub fn active_vms(&self) -> usize {
        self.vms.iter().filter(|v| v.active).count()
    }

    /// Current frequency of VM `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn vm_frequency(&self, i: usize) -> MegaHertz {
        self.vms[i].frequency
    }

    /// Change the frequency of VM `i` (affects newly dispatched requests).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_vm_frequency(&mut self, i: usize, f: MegaHertz) {
        self.vms[i].frequency = f;
    }

    /// Set the frequency of all active VMs.
    pub fn set_all_frequencies(&mut self, f: MegaHertz) {
        for vm in &mut self.vms {
            if vm.active {
                vm.frequency = f;
            }
        }
    }

    /// Grow or shrink the active VM pool. Shrinking drains the removed VMs:
    /// their queued requests are redistributed, in-flight work completes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn set_active_vm_count(&mut self, n: usize) {
        assert!(n > 0, "need at least one active VM");
        let mut active = self.active_vms();
        // Reactivate drained VMs first, then create new ones.
        if n > active {
            for vm in &mut self.vms {
                if active == n {
                    break;
                }
                if !vm.active {
                    vm.active = true;
                    vm.frequency = self.turbo;
                    active += 1;
                }
            }
            while active < n {
                self.vms.push(Vm {
                    frequency: self.turbo,
                    busy: 0,
                    queue: VecDeque::new(),
                    active: true,
                });
                active += 1;
            }
        } else if n < active {
            // Deactivate the highest-indexed active VMs.
            let mut to_drop = active - n;
            let mut orphaned: Vec<Request> = Vec::new();
            for vm in self.vms.iter_mut().rev() {
                if to_drop == 0 {
                    break;
                }
                if vm.active {
                    vm.active = false;
                    orphaned.extend(vm.queue.drain(..));
                    to_drop -= 1;
                }
            }
            for req in orphaned {
                self.route(req);
            }
        }
    }

    /// Total arrivals since construction.
    pub fn total_arrivals(&self) -> u64 {
        self.total_arrivals
    }

    /// Total completions since construction.
    pub fn total_completions(&self) -> u64 {
        self.total_completions
    }

    /// Requests currently queued or in service.
    pub fn in_system(&self) -> u64 {
        self.total_arrivals - self.total_completions
    }

    /// Advance the simulation to `until` and return the window statistics
    /// accumulated since the previous call (or construction).
    ///
    /// # Panics
    /// Panics if `until` is not after the current time.
    pub fn advance_window(&mut self, until: SimTime) -> WindowStats {
        assert!(until > self.now, "window must move time forward");
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let Some((t, event)) = self.queue.pop() else {
                break;
            };
            self.integrate_busy(t);
            self.now = t;
            match event {
                Event::Arrival => self.handle_arrival(),
                Event::Departure { vm, request } => self.handle_departure(vm, request),
            }
        }
        self.integrate_busy(until);
        self.now = until;
        self.collect_window(until)
    }

    fn collect_window(&mut self, until: SimTime) -> WindowStats {
        let window = until.since(self.window_start);
        let active_cores = (self.active_vms() * self.spec.cores_per_vm) as f64;
        let denom = active_cores * window.as_secs_f64();
        let cpu = if denom > 0.0 {
            (self.busy_core_seconds / denom).min(1.0)
        } else {
            0.0
        };
        let slo = self.spec.slo_ms();
        let (mean, p99, miss) = if self.latencies_ms.is_empty() {
            (f64::NAN, f64::NAN, 0.0)
        } else {
            let mean = self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64;
            let p99 = percentile(&self.latencies_ms, 99.0);
            let misses = self.latencies_ms.iter().filter(|&&l| l > slo).count();
            (mean, p99, misses as f64 / self.latencies_ms.len() as f64)
        };
        let stats = WindowStats {
            window,
            completions: self.latencies_ms.len() as u64,
            arrivals: self.window_arrivals,
            mean_ms: mean,
            p99_ms: p99,
            slo_miss_frac: miss,
            cpu_utilization: cpu,
            active_vms: self.active_vms(),
        };
        self.latencies_ms.clear();
        self.window_arrivals = 0;
        self.busy_core_seconds = 0.0;
        self.window_start = until;
        stats
    }

    fn integrate_busy(&mut self, to: SimTime) {
        let dt = to.saturating_since(self.last_integration).as_secs_f64();
        if dt > 0.0 {
            let busy: usize = self.vms.iter().map(|v| v.busy).sum();
            self.busy_core_seconds += busy as f64 * dt;
            self.last_integration = to;
        }
    }

    fn handle_arrival(&mut self) {
        self.total_arrivals += 1;
        self.window_arrivals += 1;
        let work = self
            .rng
            .sample_lognormal(self.lognormal_mu, self.lognormal_sigma);
        let req = Request {
            arrival: self.now,
            work,
        };
        self.route(req);
        if let Some(t) = self.next_arrival_time(self.now) {
            self.queue.push(t, Event::Arrival);
        }
    }

    fn route(&mut self, req: Request) {
        // Least-loaded active VM, normalized by core count. At least one VM
        // is always active (deactivation never empties the set), so a missing
        // target means a construction bug — assert rather than route wrong.
        let target = self
            .vms
            .iter()
            .enumerate()
            .filter(|(_, v)| v.active)
            .min_by(|(_, a), (_, b)| {
                let la = (a.busy + a.queue.len()) as f64 / self.spec.cores_per_vm as f64;
                let lb = (b.busy + b.queue.len()) as f64 / self.spec.cores_per_vm as f64;
                la.total_cmp(&lb)
            })
            .map(|(i, _)| i);
        let Some(target) = target else {
            debug_assert!(false, "no active VM to route to");
            return;
        };
        if self.vms[target].busy < self.spec.cores_per_vm {
            self.dispatch(target, req);
        } else {
            self.vms[target].queue.push_back(req);
        }
    }

    fn dispatch(&mut self, vm: usize, req: Request) {
        let freq_ratio = self.vms[vm].frequency.ratio(self.turbo);
        let duration = SimDuration::from_secs_f64(req.work / freq_ratio.max(1e-9));
        self.vms[vm].busy += 1;
        self.queue
            .push(self.now + duration, Event::Departure { vm, request: req });
    }

    fn handle_departure(&mut self, vm: usize, request: Request) {
        self.total_completions += 1;
        let latency_ms = self.now.since(request.arrival).as_millis_f64();
        self.latencies_ms.push(latency_ms);
        self.vms[vm].busy -= 1;
        if let Some(next) = self.vms[vm].queue.pop_front() {
            self.dispatch(vm, next);
        }
    }

    /// Next Poisson arrival strictly after `t` under the rate schedule, or
    /// `None` when the rate is zero for all remaining time.
    fn next_arrival_time(&mut self, t: SimTime) -> Option<SimTime> {
        let mut t = t;
        loop {
            let rate = self.schedule.rate_at(t);
            let next_change = self.schedule.next_change_after(t);
            if rate <= 0.0 {
                t = next_change?;
                continue;
            }
            let dt = SimDuration::from_secs_f64(self.rng.sample_exp(rate));
            let candidate = t + dt;
            match next_change {
                Some(change) if candidate >= change => {
                    // The sampled gap crosses a rate change; resample from
                    // the boundary (memorylessness makes this exact).
                    t = change;
                }
                _ => return Some(candidate),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServiceSpec {
        ServiceSpec::new("test", 20.0, 1.0, 4)
    }

    fn turbo() -> MegaHertz {
        MegaHertz::new(3300)
    }

    fn oc() -> MegaHertz {
        MegaHertz::new(4000)
    }

    fn run_steady(load: f64, freq: MegaHertz, vms: usize, secs: u64) -> WindowStats {
        let s = spec();
        let rate = RateSchedule::constant(load * s.capacity_per_vm(1.0) * vms as f64);
        let mut sim = MicroserviceSim::new(s, turbo(), rate, vms, 42);
        sim.set_all_frequencies(freq);
        // Warm up, then measure.
        let _ = sim.advance_window(SimTime::from_secs(secs / 4));
        sim.advance_window(SimTime::from_secs(secs))
    }

    #[test]
    fn slo_is_five_times_unloaded() {
        assert_eq!(spec().slo_ms(), 100.0);
    }

    #[test]
    fn capacity_scales_with_frequency() {
        let s = spec();
        let base = s.capacity_per_vm(1.0);
        assert!((s.capacity_per_vm(4000.0 / 3300.0) / base - 4000.0 / 3300.0).abs() < 1e-12);
        assert!((base - 200.0).abs() < 1e-9); // 4 cores / 20ms
    }

    #[test]
    fn unloaded_latency_near_service_time() {
        let stats = run_steady(0.05, turbo(), 1, 60);
        assert!(
            (stats.mean_ms - 20.0).abs() < 5.0,
            "unloaded mean {} should be ≈ service time",
            stats.mean_ms
        );
        assert!(stats.slo_miss_frac < 0.02);
    }

    #[test]
    fn latency_grows_with_load() {
        let low = run_steady(0.3, turbo(), 1, 120);
        let high = run_steady(0.85, turbo(), 1, 120);
        assert!(
            high.p99_ms > 1.5 * low.p99_ms,
            "P99 should blow up with load: low={} high={}",
            low.p99_ms,
            high.p99_ms
        );
        assert!(high.cpu_utilization > low.cpu_utilization);
    }

    #[test]
    fn overclocking_reduces_tail_latency_at_high_load() {
        let base = run_steady(0.85, turbo(), 1, 240);
        let boosted = run_steady(0.85, oc(), 1, 240);
        assert!(
            boosted.p99_ms < base.p99_ms,
            "overclocking should cut the tail: turbo={} oc={}",
            base.p99_ms,
            boosted.p99_ms
        );
        assert!(boosted.slo_miss_frac <= base.slo_miss_frac);
    }

    #[test]
    fn scale_out_reduces_tail_latency() {
        let one = run_steady(0.85, turbo(), 1, 240);
        // Same absolute arrival rate spread over two VMs.
        let s = spec();
        let rate = RateSchedule::constant(0.85 * s.capacity_per_vm(1.0));
        let mut sim = MicroserviceSim::new(s, turbo(), rate, 2, 42);
        let _ = sim.advance_window(SimTime::from_secs(60));
        let two = sim.advance_window(SimTime::from_secs(240));
        assert!(two.p99_ms < one.p99_ms);
        assert_eq!(two.active_vms, 2);
    }

    #[test]
    fn utilization_matches_offered_load() {
        let stats = run_steady(0.5, turbo(), 1, 300);
        assert!(
            (stats.cpu_utilization - 0.5).abs() < 0.06,
            "utilization {} should track offered load 0.5",
            stats.cpu_utilization
        );
    }

    #[test]
    fn overclocking_lowers_utilization_at_same_load() {
        // Fig. 16: same RPS, lower CPU utilization when overclocked.
        let base = run_steady(0.6, turbo(), 1, 300);
        let boosted = run_steady(0.6, oc(), 1, 300);
        assert!(
            boosted.cpu_utilization < base.cpu_utilization,
            "OC should lower utilization: {} vs {}",
            boosted.cpu_utilization,
            base.cpu_utilization
        );
    }

    #[test]
    fn shrink_drains_and_redistributes() {
        let s = spec();
        let rate = RateSchedule::constant(0.7 * s.capacity_per_vm(1.0) * 2.0);
        let mut sim = MicroserviceSim::new(s, turbo(), rate, 2, 9);
        let _ = sim.advance_window(SimTime::from_secs(30));
        sim.set_active_vm_count(1);
        assert_eq!(sim.active_vms(), 1);
        let stats = sim.advance_window(SimTime::from_secs(90));
        // All work keeps completing through the remaining VM.
        assert!(stats.completions > 0);
        // Conservation: nothing lost.
        assert!(sim.total_completions() <= sim.total_arrivals());
    }

    #[test]
    fn grow_reactivates_then_creates() {
        let s = spec();
        let rate = RateSchedule::constant(10.0);
        let mut sim = MicroserviceSim::new(s, turbo(), rate, 3, 9);
        sim.set_active_vm_count(1);
        sim.set_active_vm_count(4);
        assert_eq!(sim.active_vms(), 4);
    }

    #[test]
    fn window_counters_reset() {
        let s = spec();
        let rate = RateSchedule::constant(50.0);
        let mut sim = MicroserviceSim::new(s, turbo(), rate, 1, 4);
        let w1 = sim.advance_window(SimTime::from_secs(10));
        let w2 = sim.advance_window(SimTime::from_secs(20));
        assert!(w1.arrivals > 0 && w2.arrivals > 0);
        // Window counters partition the lifetime counters.
        assert_eq!(sim.total_arrivals(), w1.arrivals + w2.arrivals);
        assert_eq!(sim.total_completions(), w1.completions + w2.completions);
        // Conservation: everything that arrived is either done or in system.
        assert_eq!(
            sim.total_arrivals(),
            sim.total_completions() + sim.in_system()
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let make = || {
            let s = spec();
            let rate = RateSchedule::constant(100.0);
            let mut sim = MicroserviceSim::new(s, turbo(), rate, 1, 77);
            sim.advance_window(SimTime::from_secs(60))
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rate_schedule_produces_no_arrivals() {
        let s = spec();
        let rate = RateSchedule::constant(0.0);
        let mut sim = MicroserviceSim::new(s, turbo(), rate, 1, 5);
        let stats = sim.advance_window(SimTime::from_secs(60));
        assert_eq!(stats.arrivals, 0);
        assert_eq!(stats.completions, 0);
        assert!(stats.p99_ms.is_nan());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Conservation: arrivals = completions + in-system, under any
            /// sequence of frequency changes and VM scaling.
            #[test]
            fn conservation_under_control_churn(
                ops in prop::collection::vec((1u64..4, 0u32..3, 1usize..4), 1..12),
                seed in 0u64..1000,
            ) {
                let s = spec();
                let rate = RateSchedule::constant(0.6 * s.capacity_per_vm(1.0));
                let mut sim = MicroserviceSim::new(s, turbo(), rate, 1, seed);
                let mut now = SimTime::ZERO;
                for &(advance_s, freq_step, vms) in &ops {
                    now += SimDuration::from_secs(advance_s * 5);
                    let _ = sim.advance_window(now);
                    sim.set_all_frequencies(MegaHertz::new(3300 + 100 * freq_step));
                    sim.set_active_vm_count(vms);
                }
                prop_assert_eq!(
                    sim.total_arrivals(),
                    sim.total_completions() + sim.in_system()
                );
            }

            /// Latencies are never negative and windows never report more
            /// completions than lifetime totals.
            #[test]
            fn window_stats_are_sane(seed in 0u64..500, load in 0.1..0.9f64) {
                let s = spec();
                let rate = RateSchedule::constant(load * s.capacity_per_vm(1.0));
                let mut sim = MicroserviceSim::new(s, turbo(), rate, 1, seed);
                let w = sim.advance_window(SimTime::from_secs(30));
                prop_assert!(w.completions <= sim.total_completions());
                if !w.p99_ms.is_nan() {
                    prop_assert!(w.p99_ms >= 0.0);
                    prop_assert!(w.p99_ms + 1e-9 >= w.mean_ms);
                }
                prop_assert!((0.0..=1.0).contains(&w.cpu_utilization));
                prop_assert!((0.0..=1.0).contains(&w.slo_miss_frac));
            }
        }
    }

    #[test]
    fn rate_change_mid_run_shifts_throughput() {
        let s = spec();
        let rate = RateSchedule::constant(20.0).with_segment(SimTime::from_secs(60), 150.0);
        let mut sim = MicroserviceSim::new(s, turbo(), rate, 1, 6);
        let w1 = sim.advance_window(SimTime::from_secs(60));
        let w2 = sim.advance_window(SimTime::from_secs(120));
        assert!(w2.arrivals as f64 > 4.0 * w1.arrivals as f64);
    }
}

//! Arrival-rate schedules.
//!
//! An open-loop load generator needs a rate function λ(t). [`RateSchedule`]
//! is piecewise constant, which composes cleanly with the event-driven
//! simulator (exponential inter-arrivals within a segment) and is expressive
//! enough for the paper's load patterns: steady low/medium/high levels
//! (Figs. 2–3), diurnal ramps, and transient spikes (§I).

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// A piecewise-constant arrival-rate schedule (requests per second).
///
/// ```
/// use soc_workloads::loadgen::RateSchedule;
/// use simcore::time::{SimDuration, SimTime};
///
/// let sched = RateSchedule::constant(100.0)
///     .with_segment(SimTime::from_secs(60), 250.0);
/// assert_eq!(sched.rate_at(SimTime::from_secs(30)), 100.0);
/// assert_eq!(sched.rate_at(SimTime::from_secs(90)), 250.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    /// `(start, rate)` pairs, sorted by start; the first segment starts at 0.
    segments: Vec<(SimTime, f64)>,
}

impl RateSchedule {
    /// A constant rate from time zero.
    ///
    /// # Panics
    /// Panics if `rate` is negative or not finite.
    pub fn constant(rate: f64) -> RateSchedule {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and non-negative"
        );
        RateSchedule {
            segments: vec![(SimTime::ZERO, rate)],
        }
    }

    /// Append a segment starting at `start` with the given rate.
    ///
    /// # Panics
    /// Panics if `start` is not after the previous segment's start, or the
    /// rate is invalid.
    pub fn with_segment(mut self, start: SimTime, rate: f64) -> RateSchedule {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and non-negative"
        );
        let last = self
            .segments
            .last()
            .expect("schedule always has a segment")
            .0;
        assert!(
            start > last,
            "segments must be appended in increasing time order"
        );
        self.segments.push((start, rate));
        self
    }

    /// A repeating burst pattern: `base` rate with `peak`-rate bursts of
    /// `burst_len` starting every `period`, beginning at time zero.
    ///
    /// # Panics
    /// Panics if `burst_len >= period`, either is zero, or rates are invalid.
    pub fn bursty(
        base: f64,
        peak: f64,
        period: SimDuration,
        burst_len: SimDuration,
        total: SimDuration,
    ) -> RateSchedule {
        assert!(
            !period.is_zero() && !burst_len.is_zero(),
            "period and burst must be non-zero"
        );
        assert!(burst_len < period, "burst must be shorter than the period");
        let mut sched = RateSchedule::constant(peak);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + total;
        loop {
            let burst_end = t + burst_len;
            if burst_end >= end {
                break;
            }
            sched = sched.with_segment(burst_end, base);
            let next = t + period;
            if next >= end {
                break;
            }
            sched = sched.with_segment(next, peak);
            t = next;
        }
        sched
    }

    /// The rate at instant `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let idx = self.segments.partition_point(|&(s, _)| s <= t);
        self.segments[idx.saturating_sub(1).min(self.segments.len() - 1)].1
    }

    /// Start of the next segment strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        self.segments.iter().map(|&(s, _)| s).find(|&s| s > t)
    }

    /// The maximum rate anywhere in the schedule.
    pub fn peak_rate(&self) -> f64 {
        self.segments.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }

    /// Expected number of arrivals in `[from, to)`.
    ///
    /// # Panics
    /// Panics if `to < from`.
    pub fn expected_arrivals(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to >= from, "interval must be forward");
        let mut total = 0.0;
        let mut t = from;
        while t < to {
            let seg_end = self.next_change_after(t).unwrap_or(to).min(to);
            total += self.rate_at(t) * seg_end.since(t).as_secs_f64();
            t = seg_end;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_everywhere() {
        let s = RateSchedule::constant(5.0);
        assert_eq!(s.rate_at(SimTime::ZERO), 5.0);
        assert_eq!(s.rate_at(SimTime::from_secs(1_000_000)), 5.0);
        assert_eq!(s.peak_rate(), 5.0);
        assert_eq!(s.next_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn segments_switch_at_boundaries() {
        let s = RateSchedule::constant(1.0)
            .with_segment(SimTime::from_secs(10), 2.0)
            .with_segment(SimTime::from_secs(20), 0.5);
        assert_eq!(s.rate_at(SimTime::from_secs(9)), 1.0);
        assert_eq!(s.rate_at(SimTime::from_secs(10)), 2.0);
        assert_eq!(s.rate_at(SimTime::from_secs(25)), 0.5);
        assert_eq!(
            s.next_change_after(SimTime::from_secs(10)),
            Some(SimTime::from_secs(20))
        );
    }

    #[test]
    fn bursty_alternates() {
        let s = RateSchedule::bursty(
            10.0,
            100.0,
            SimDuration::from_secs(60),
            SimDuration::from_secs(5),
            SimDuration::from_secs(180),
        );
        assert_eq!(s.rate_at(SimTime::from_secs(2)), 100.0); // in burst
        assert_eq!(s.rate_at(SimTime::from_secs(30)), 10.0); // between bursts
        assert_eq!(s.rate_at(SimTime::from_secs(62)), 100.0); // next burst
        assert_eq!(s.peak_rate(), 100.0);
    }

    #[test]
    fn expected_arrivals_integrates() {
        let s = RateSchedule::constant(2.0).with_segment(SimTime::from_secs(10), 4.0);
        let n = s.expected_arrivals(SimTime::ZERO, SimTime::from_secs(20));
        assert!((n - (2.0 * 10.0 + 4.0 * 10.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "increasing time order")]
    fn rejects_out_of_order_segments() {
        let _ = RateSchedule::constant(1.0)
            .with_segment(SimTime::from_secs(10), 2.0)
            .with_segment(SimTime::from_secs(5), 3.0);
    }
}

//! The eight SocialNet-like microservice specifications.
//!
//! Figs. 2–3 of the paper run eight SocialNet microservices with visibly
//! different SLO sensitivity: "some services (e.g., Usr) can tolerate higher
//! CPU utilization without violating their SLO while other services (e.g.,
//! UrlShort) violate their SLO even under low CPU utilization" (§III-Q1).
//! Tail sensitivity in a queueing system is governed by service-time
//! variability, so the catalog below varies the coefficient of variation
//! (CV) from nearly deterministic (Usr) to heavy-tailed (UrlShort).

use crate::microservice::ServiceSpec;
use serde::{Deserialize, Serialize};

/// Load levels used across the evaluation (fraction of a single VM's turbo
/// capacity offered as arrivals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadLevel {
    /// ~30 % of turbo capacity.
    Low,
    /// ~55 % of turbo capacity.
    Medium,
    /// ~82 % of turbo capacity.
    High,
}

impl LoadLevel {
    /// All levels, low to high.
    pub const ALL: [LoadLevel; 3] = [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High];

    /// The offered load as a fraction of single-VM turbo capacity.
    pub fn fraction(self) -> f64 {
        match self {
            LoadLevel::Low => 0.30,
            LoadLevel::Medium => 0.55,
            LoadLevel::High => 0.82,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LoadLevel::Low => "Low",
            LoadLevel::Medium => "Medium",
            LoadLevel::High => "High",
        }
    }
}

impl std::fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The eight SocialNet microservices of Figs. 2–3.
///
/// Ordering is stable; names follow the paper's figure labels.
pub fn socialnet_services() -> Vec<ServiceSpec> {
    vec![
        // name, mean service ms at turbo, CV, cores per VM
        ServiceSpec::new("ComposePost", 24.0, 0.90, 4),
        ServiceSpec::new("HomeTimeline", 18.0, 0.80, 4),
        ServiceSpec::new("UserTimeline", 16.0, 0.75, 4),
        ServiceSpec::new("UrlShort", 6.0, 2.60, 4), // heavy tail: misses SLO at low util
        ServiceSpec::new("UserMention", 10.0, 0.85, 4),
        ServiceSpec::new("Text", 8.0, 0.70, 4),
        ServiceSpec::new("Media", 30.0, 0.85, 4),
        ServiceSpec::new("Usr", 5.0, 0.35, 4), // near-deterministic: tolerates high util
    ]
}

/// Look up a SocialNet service by name.
pub fn socialnet_service(name: &str) -> Option<ServiceSpec> {
    socialnet_services().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::RateSchedule;
    use crate::microservice::MicroserviceSim;
    use simcore::time::SimTime;
    use soc_power::units::MegaHertz;

    #[test]
    fn catalog_has_eight_services() {
        let services = socialnet_services();
        assert_eq!(services.len(), 8);
        let names: Vec<&str> = services.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"UrlShort"));
        assert!(names.contains(&"Usr"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(socialnet_service("Media").is_some());
        assert!(socialnet_service("Nope").is_none());
    }

    #[test]
    fn load_levels_are_ordered() {
        assert!(LoadLevel::Low.fraction() < LoadLevel::Medium.fraction());
        assert!(LoadLevel::Medium.fraction() < LoadLevel::High.fraction());
    }

    #[test]
    fn urlshort_is_tail_sensitive_usr_is_not() {
        // The paper's Q1 heterogeneity: at the same moderate utilization,
        // UrlShort misses its SLO while Usr is comfortably within it.
        let turbo = MegaHertz::new(3300);
        let run = |spec: crate::microservice::ServiceSpec, load: f64| {
            let rate = RateSchedule::constant(load * spec.capacity_per_vm(1.0));
            let mut sim = MicroserviceSim::new(spec, turbo, rate, 1, 31);
            let _ = sim.advance_window(SimTime::from_secs(60));
            sim.advance_window(SimTime::from_secs(300))
        };
        let url = run(socialnet_service("UrlShort").unwrap(), 0.55);
        let usr = run(socialnet_service("Usr").unwrap(), 0.80);
        let url_ratio = url.p99_ms / socialnet_service("UrlShort").unwrap().slo_ms();
        let usr_ratio = usr.p99_ms / socialnet_service("Usr").unwrap().slo_ms();
        assert!(
            url_ratio > 1.0,
            "UrlShort at 55% load should violate its SLO (ratio {url_ratio})"
        );
        assert!(
            usr_ratio < 1.0,
            "Usr at 80% load should meet its SLO (ratio {usr_ratio})"
        );
    }
}

//! Throughput-oriented ML-training workload.
//!
//! The paper's cluster runs "throughput-optimized machine learning training
//! (MLTrain) from FunctionBench" on the constant-high-power servers (§V-A).
//! MLTrain is never overclocked; what matters is (a) its steady high power
//! draw and (b) how much throughput it loses when power capping throttles
//! its frequency — SmartOClock's heterogeneous budgets reduce exactly that
//! penalty ("improves the MLTrain throughput by 10.4%", §V-A).

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use soc_power::units::MegaHertz;

/// A batch training job: progress is proportional to core frequency.
///
/// ```
/// use soc_workloads::mltrain::MlTrain;
/// use soc_power::units::MegaHertz;
/// use simcore::time::SimDuration;
///
/// let mut job = MlTrain::new(MegaHertz::new(3300), 0.9);
/// job.run_for(SimDuration::from_secs(100), MegaHertz::new(3300));
/// job.run_for(SimDuration::from_secs(100), MegaHertz::new(1650)); // capped
/// // 100s at full speed + 100s at half speed = 150 reference-seconds.
/// assert!((job.progress_seconds() - 150.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlTrain {
    reference_frequency: MegaHertz,
    utilization: f64,
    progress_seconds: f64,
    elapsed: SimDuration,
}

impl MlTrain {
    /// Create a job that makes 1 reference-second of progress per wall second
    /// at `reference_frequency` (typically max turbo).
    ///
    /// # Panics
    /// Panics if `utilization` is outside `(0, 1]` or the frequency is zero.
    pub fn new(reference_frequency: MegaHertz, utilization: f64) -> MlTrain {
        assert!(
            reference_frequency.get() > 0,
            "reference frequency must be positive"
        );
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        MlTrain {
            reference_frequency,
            utilization,
            progress_seconds: 0.0,
            elapsed: SimDuration::ZERO,
        }
    }

    /// Steady CPU utilization of the training job.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Advance the job by `dt` running at `frequency`.
    pub fn run_for(&mut self, dt: SimDuration, frequency: MegaHertz) {
        let speed = frequency.ratio(self.reference_frequency);
        self.progress_seconds += dt.as_secs_f64() * speed;
        self.elapsed += dt;
    }

    /// Total progress in reference-seconds.
    pub fn progress_seconds(&self) -> f64 {
        self.progress_seconds
    }

    /// Wall-clock time elapsed.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Mean throughput relative to running uncapped the whole time
    /// (1.0 = no capping penalty).
    ///
    /// # Panics
    /// Panics if the job has not run yet.
    pub fn relative_throughput(&self) -> f64 {
        assert!(!self.elapsed.is_zero(), "job has not run");
        self.progress_seconds / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_tracks_frequency() {
        let mut job = MlTrain::new(MegaHertz::new(3300), 0.9);
        job.run_for(SimDuration::from_secs(60), MegaHertz::new(3300));
        assert!((job.progress_seconds() - 60.0).abs() < 1e-9);
        assert!((job.relative_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capping_halves_throughput() {
        let mut job = MlTrain::new(MegaHertz::new(3300), 0.9);
        job.run_for(SimDuration::from_secs(100), MegaHertz::new(1650));
        assert!((job.relative_throughput() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mixed_speeds_average() {
        let mut job = MlTrain::new(MegaHertz::new(3000), 0.8);
        job.run_for(SimDuration::from_secs(50), MegaHertz::new(3000));
        job.run_for(SimDuration::from_secs(50), MegaHertz::new(2400));
        assert!((job.relative_throughput() - 0.9).abs() < 1e-9);
        assert_eq!(job.elapsed(), SimDuration::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "utilization must be in")]
    fn rejects_zero_utilization() {
        let _ = MlTrain::new(MegaHertz::new(3300), 0.0);
    }
}
